#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace hecate::runtime {

namespace {

/** State shared by every worker of one execute() call. */
struct SharedCtx {
    const Program* program = nullptr;
    TreeArena* arena = nullptr;
    ThreadPool* pool = nullptr;
    size_t grain = 1;
    NodeIdx spawnPrefix = 0;
    std::vector<int64_t*> cols; ///< raw column bases, by column id

    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> rules{0};
    std::atomic<uint64_t> regions{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> helps{0};
};

/**
 * One traversal worker: an explicit (node, pc) frame stack plus a
 * reusable expression operand stack. Chunk tasks construct their own
 * Worker, so workers never share mutable state — only the arena cells
 * a verified schedule already guarantees are disjoint.
 *
 * The dispatch loop keeps the current frame in locals and descends
 * into scalar children in place (saving the parent's resume frame),
 * so a straight run of evals never touches the frame stack, and the
 * per-node `kids` pointer turns every child access into a single
 * load from the CSR scalar array.
 */
class Worker {
  public:
    explicit Worker(SharedCtx& ctx)
        : ctx_(ctx), code_(ctx.program->code().data()),
          xcode_(ctx.program->exprPool().data()),
          evals_(ctx.program->evals().data()),
          entry_(ctx.program->entryData()),
          cols_(ctx.cols.data()),
          cls_(ctx.arena->classData()),
          scalarBase_(ctx.arena->scalarBaseData()),
          scalars_(ctx.arena->scalarsData()),
          zero_(ctx.arena->zeroRow())
    {
        xstack_.resize(ctx.program->maxExprStack());
    }

    ~Worker()
    {
        ctx_.visits += visits_;
        ctx_.rules += rules_;
        ctx_.helps += helps_;
    }

    void run(NodeIdx root)
    {
        stack_.clear();
        pushFrame(root);
        while (!stack_.empty()) {
            Frame f = stack_.back();
            stack_.pop_back();
            const NodeIdx* kids = scalars_ + scalarBase_[f.node];
            bool live = true;
            while (live) {
                const Inst inst = code_[f.pc];
                ++f.pc;
                switch (inst.op) {
                  case Op::Eval:
                    evalRun(inst.a, inst.b, f.node, kids);
                    break;
                  case Op::Recur: {
                    NodeIdx child = kids[inst.a];
                    if (child != zero_) {
                        // Tail elision: a parent whose next op is Ret
                        // has nothing left to do — don't save it. This
                        // keeps list-shaped trees (next-sibling chains)
                        // at O(1) stack instead of O(chain).
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // parent resumes later
                        f = {child, entry_[cls_[child]]};
                        kids = scalars_ + scalarBase_[child];
                        ++visits_;
                    }
                    break;
                  }
                  case Op::Iterate: {
                    // Reverse push: the first element runs first,
                    // before the case's post-loop evals (they sit at
                    // later pcs of the parent frame, which resumes
                    // only when every element subtree is done).
                    auto [beg, end] =
                        ctx_.arena->collection(f.node, inst.a);
                    if (beg != end) {
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f); // tail elision (Recur)
                        for (const NodeIdx* p = end; p != beg;)
                            pushFrame(*--p);
                        live = false;
                    }
                    break;
                  }
                  case Op::ParBegin: {
                    branches_.clear();
                    uint32_t pc = f.pc;
                    for (;; ++pc) {
                        const Inst b = code_[pc];
                        if (b.op == Op::ParRecur) {
                            NodeIdx t = kids[b.a];
                            if (t != zero_)
                                branches_.push_back(t);
                        } else if (b.op == Op::ParColl) {
                            auto [beg, end] =
                                ctx_.arena->collection(f.node, b.a);
                            branches_.insert(branches_.end(), beg, end);
                        } else {
                            break; // ParEnd
                        }
                    }
                    f.pc = pc + 1;
                    live = dispatchRegion(f);
                    break;
                  }
                  case Op::Ret:
                    live = false;
                    break;
                  case Op::ParRecur:
                  case Op::ParColl:
                  case Op::ParEnd:
                    internalError("Executor: region op outside a region");
                }
            }
        }
    }

    /**
     * Linear two-sweep execution for sandwich-shaped programs (see
     * Program::sweepable): one ascending pass over the BFS node array
     * runs every pre-visit eval run (parents precede children), one
     * descending pass runs every post-visit run (children precede
     * parents). Every parent/child ordering the DFS traversal
     * guarantees between dependent rule applications is preserved, so
     * the attribute values are identical — but dispatch is a tight
     * loop with streaming column access instead of a frame stack.
     */
    void runSweep(const SweepCase* sweeps)
    {
        const NodeIdx count = static_cast<NodeIdx>(ctx_.arena->size());
        for (NodeIdx node = 0; node < count; ++node) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.preCount != 0)
                evalRun(sc.preBegin, sc.preCount, node,
                        scalars_ + scalarBase_[node]);
        }
        for (NodeIdx node = count; node-- > 0;) {
            const SweepCase& sc = sweeps[cls_[node]];
            if (sc.postCount != 0)
                evalRun(sc.postBegin, sc.postCount, node,
                        scalars_ + scalarBase_[node]);
            ++visits_;
        }
    }

  private:
    struct Frame {
        NodeIdx node;
        uint32_t pc;
    };

    /** Play the run of @p count EvalSpecs starting at @p begin. */
    void evalRun(uint32_t begin, uint32_t count, NodeIdx node,
                 const NodeIdx* kids)
    {
        const EvalSpec* s = &evals_[begin];
        for (uint32_t n = count; n != 0; --n, ++s) {
            const EvalSpec& spec = *s;
            // Row 0 is the node itself, so self and child targets
            // resolve identically. A vacuous eval (absent optional
            // target) performs no write at all: parallel workers may
            // evaluate the same inherited rule concurrently, and any
            // shared discard cell would be a data race.
            NodeIdx target = kids[spec.targetSlot];
            if (target == zero_)
                continue;
            if (spec.kind == EvalKind::Bytecode) {
                cols_[spec.targetCol][target] =
                    evalExpr(node, kids, spec.xbegin);
                ++rules_;
                continue;
            }
            int64_t v;
            switch (spec.kind) {
              case EvalKind::Copy:
                v = load(spec.a, kids);
                break;
              case EvalKind::Un:
                v = load(spec.a, kids);
                v = v < 0 ? -v : v; // Un is always Abs
                break;
              case EvalKind::Bin:
                v = apply(spec.fn1, load(spec.a, kids),
                          load(spec.b, kids));
                break;
              case EvalKind::TriL:
                v = apply(spec.fn2,
                          apply(spec.fn1, load(spec.a, kids),
                                load(spec.b, kids)),
                          load(spec.c, kids));
                break;
              case EvalKind::TriR:
                v = apply(spec.fn2, load(spec.a, kids),
                          apply(spec.fn1, load(spec.b, kids),
                                load(spec.c, kids)));
                break;
              default:
                internalError("Executor: bad eval kind");
            }
            cols_[spec.targetCol][target] = v;
            ++rules_;
        }
    }

    void pushFrame(NodeIdx node)
    {
        stack_.push_back({node, entry_[cls_[node]]});
        ++visits_;
    }

    /**
     * Run the collected region branches. Returns whether the caller's
     * frame stays live: forked regions join before it continues;
     * inline regions stack it under the branch frames instead.
     */
    bool dispatchRegion(const Frame& f)
    {
        size_t grain = ctx_.grain;
        size_t chunkCount = (branches_.size() + grain - 1) / grain;
        if (chunkCount <= 1 && branches_.size() >= 2 &&
            ctx_.pool != nullptr && f.node < ctx_.spawnPrefix) {
            // Narrow region near the root (BFS ids are a depth proxy):
            // each branch is a whole large subtree, so fork per branch
            // even though they never fill a grain-sized chunk.
            grain = 1;
            chunkCount = branches_.size();
        }
        if (ctx_.pool == nullptr || chunkCount <= 1) {
            if (code_[f.pc].op != Op::Ret)
                stack_.push_back(f); // resumes after the branch subtrees
            for (auto it = branches_.rbegin(); it != branches_.rend(); ++it)
                pushFrame(*it);
            return false;
        }
        ++ctx_.regions;
        std::atomic<size_t> pending{chunkCount};
        std::atomic<bool> failed{false};
        std::exception_ptr firstError;
        // A chunk task must decrement pending no matter how it exits:
        // the pool catches task exceptions (record-and-continue), so a
        // throw that skipped the decrement would hang the help-join
        // loop below forever. The first failure is captured and
        // rethrown on the forking thread after the join; firstError is
        // published by the release decrement / acquire join pair.
        auto runChunk = [this, &pending, &failed, &firstError](
                            const NodeIdx* beg, const NodeIdx* end) {
            try {
                Worker sub(ctx_);
                for (const NodeIdx* p = beg; p != end; ++p)
                    sub.run(*p);
            } catch (...) {
                if (!failed.exchange(true))
                    firstError = std::current_exception();
            }
            pending.fetch_sub(1, std::memory_order_release);
        };
        size_t submitted = 0;
        try {
            for (; submitted < chunkCount; ++submitted) {
                const NodeIdx* beg = branches_.data() + submitted * grain;
                const NodeIdx* end = branches_.data() +
                    std::min(branches_.size(), (submitted + 1) * grain);
                // beg/end stay valid: this frame owns branches_ and
                // blocks in the help-join loop until pending hits zero.
                ctx_.pool->submit([runChunk, beg, end] { runChunk(beg, end); });
                ++ctx_.tasks;
            }
        } catch (...) {
            // submit itself threw (allocation): account for the chunks
            // that never made it into the queue, join the rest, rethrow.
            if (!failed.exchange(true))
                firstError = std::current_exception();
            pending.fetch_sub(chunkCount - submitted,
                              std::memory_order_release);
        }
        // Help-join: drain the queue instead of blocking, so nested
        // regions on a fixed-size pool always make progress.
        while (pending.load(std::memory_order_acquire) != 0) {
            if (ctx_.pool->runOne())
                ++helps_;
            else
                std::this_thread::yield();
        }
        if (failed.load(std::memory_order_relaxed))
            std::rethrow_exception(firstError);
        return true;
    }

    /** One leaf operand of a specialized eval. */
    int64_t load(const Operand& op, const NodeIdx* kids) const
    {
        if (op.slot == Operand::kConst)
            return op.imm;
        // Row 0 is the node itself; absent children alias the
        // always-zero row — a single unconditional load either way.
        return cols_[op.col][kids[op.slot]];
    }

    /** One two-operand op of a specialized eval (interp semantics). */
    static int64_t apply(XOp fn, int64_t x, int64_t y)
    {
        switch (fn) {
          case XOp::Add: return x + y;
          case XOp::Sub: return x - y;
          case XOp::Mul: return x * y;
          case XOp::Div: return y == 0 ? 0 : x / y;
          case XOp::Mod: return y == 0 ? 0 : x % y;
          case XOp::Lt: return x < y ? 1 : 0;
          case XOp::Le: return x <= y ? 1 : 0;
          case XOp::Gt: return x > y ? 1 : 0;
          case XOp::Ge: return x >= y ? 1 : 0;
          case XOp::Eq: return x == y ? 1 : 0;
          case XOp::Ne: return x != y ? 1 : 0;
          case XOp::Max2: return x > y ? x : y;
          case XOp::Min2: return x < y ? x : y;
          default:
            internalError("Executor: bad superinstruction op");
        }
    }

    int64_t evalExpr(NodeIdx node, const NodeIdx* kids, uint32_t pc)
    {
        const XInst* xcode = xcode_;
        int64_t* const* cols = cols_;
        int64_t* sp = xstack_.data();
        for (;; ++pc) {
            const XInst x = xcode[pc];
            switch (x.op) {
              case XOp::Const:
                *sp++ = x.imm;
                break;
              case XOp::LoadSelf:
                *sp++ = cols[x.a][node];
                break;
              case XOp::LoadChild:
                // Absent children alias the always-zero row.
                *sp++ = cols[x.b][kids[x.a]];
                break;
              case XOp::Add: sp[-2] = sp[-2] + sp[-1]; --sp; break;
              case XOp::Sub: sp[-2] = sp[-2] - sp[-1]; --sp; break;
              case XOp::Mul: sp[-2] = sp[-2] * sp[-1]; --sp; break;
              case XOp::Div:
                sp[-2] = sp[-1] == 0 ? 0 : sp[-2] / sp[-1];
                --sp;
                break;
              case XOp::Mod:
                sp[-2] = sp[-1] == 0 ? 0 : sp[-2] % sp[-1];
                --sp;
                break;
              case XOp::Lt: sp[-2] = sp[-2] < sp[-1] ? 1 : 0; --sp; break;
              case XOp::Le: sp[-2] = sp[-2] <= sp[-1] ? 1 : 0; --sp; break;
              case XOp::Gt: sp[-2] = sp[-2] > sp[-1] ? 1 : 0; --sp; break;
              case XOp::Ge: sp[-2] = sp[-2] >= sp[-1] ? 1 : 0; --sp; break;
              case XOp::Eq: sp[-2] = sp[-2] == sp[-1] ? 1 : 0; --sp; break;
              case XOp::Ne: sp[-2] = sp[-2] != sp[-1] ? 1 : 0; --sp; break;
              case XOp::Max2:
                sp[-2] = sp[-2] > sp[-1] ? sp[-2] : sp[-1];
                --sp;
                break;
              case XOp::Min2:
                sp[-2] = sp[-2] < sp[-1] ? sp[-2] : sp[-1];
                --sp;
                break;
              case XOp::Abs:
                sp[-1] = sp[-1] < 0 ? -sp[-1] : sp[-1];
                break;
              case XOp::Fold: {
                int64_t acc = sp[-1];
                auto [beg, end] = ctx_.arena->collection(node, x.a);
                const int64_t* col = cols[x.b];
                switch (x.fn) {
                  case FoldFn::Add:
                    for (const NodeIdx* p = beg; p != end; ++p)
                        acc += col[*p];
                    break;
                  case FoldFn::Mul:
                    for (const NodeIdx* p = beg; p != end; ++p)
                        acc *= col[*p];
                    break;
                  case FoldFn::Max:
                    for (const NodeIdx* p = beg; p != end; ++p)
                        acc = acc > col[*p] ? acc : col[*p];
                    break;
                  case FoldFn::Min:
                    for (const NodeIdx* p = beg; p != end; ++p)
                        acc = acc < col[*p] ? acc : col[*p];
                    break;
                }
                sp[-1] = acc;
                break;
              }
              case XOp::Jz:
                if (*--sp == 0)
                    pc = x.a - 1; // ++pc lands on the target
                break;
              case XOp::Jmp:
                pc = x.a - 1;
                break;
              case XOp::Done:
                return sp[-1];
            }
        }
    }

    SharedCtx& ctx_;
    // Hot-path views, hoisted once per worker.
    const Inst* code_;
    const XInst* xcode_;
    const EvalSpec* evals_;
    const uint32_t* entry_;
    int64_t* const* cols_;
    const sem::ClassId* cls_;
    const uint32_t* scalarBase_;
    const NodeIdx* scalars_;
    const NodeIdx zero_; ///< absent-child sentinel (the zero row)
    std::vector<Frame> stack_;
    std::vector<NodeIdx> branches_;
    std::vector<int64_t> xstack_;
    uint64_t visits_ = 0;
    uint64_t rules_ = 0;
    uint64_t helps_ = 0;
};

} // namespace

RuntimeStats
execute(const Program& program, TreeArena& arena, const ExecOptions& options)
{
    checkInvariant(&program.grammar() == &arena.grammar(),
                   "runtime::execute: program and arena grammar mismatch");
    SharedCtx ctx;
    ctx.program = &program;
    ctx.arena = &arena;
    ctx.pool = options.pool;
    ctx.grain = std::max<uint32_t>(1, options.grain);
    ctx.spawnPrefix = options.spawnPrefix;
    ctx.cols.resize(arena.layout().columnCount());
    for (uint32_t col = 0; col < ctx.cols.size(); ++col)
        ctx.cols[col] = arena.columnData(col);

    if (arena.size() != 0) {
        Worker worker(ctx);
        if (program.sweepable())
            worker.runSweep(program.sweepData());
        else
            worker.run(arena.root());
    }

    RuntimeStats stats;
    stats.nodeVisits = ctx.visits.load();
    stats.rulesEvaluated = ctx.rules.load();
    stats.parallelRegions = ctx.regions.load();
    stats.tasksSpawned = ctx.tasks.load();
    stats.helpJoinRuns = ctx.helps.load();
    return stats;
}

} // namespace hecate::runtime
