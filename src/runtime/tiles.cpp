#include "runtime/tiles.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hecate::runtime {

namespace {

/** Tiles below this are all dispatch overhead; above size they clamp. */
constexpr uint32_t kMinTileNodes = 4;

} // namespace

// Deliberately conservative: overestimating shrinks tiles, and
// slightly-too-small tiles cost far less than tiles that thrash L2.
uint64_t
tileBytesPerNode(const ArenaView& view)
{
    return 8ull * view.layout->columnCount() + 24;
}

TileGraph
TileGraph::build(const ArenaView& view, uint64_t tileBytes)
{
    if (tileBytes == 0)
        tileBytes = kDefaultTileBytes;
    TileGraph out;
    out.stats_.tileBytes = tileBytes;
    const uint32_t size = view.size;
    if (size == 0)
        return out;

    const uint64_t bytesPerNode = tileBytesPerNode(view);
    const uint32_t cap = static_cast<uint32_t>(std::clamp<uint64_t>(
        tileBytes / bytesPerNode, kMinTileNodes, size));
    out.stats_.bytesPerNode = bytesPerNode;
    out.stats_.nodesPerTile = cap;

    // Exact subtree node counts, one reverse pass: arena ids are BFS
    // so every child id exceeds its parent's. Spill packing below uses
    // these to merge frontier subtrees into cap-sized tiles instead of
    // emitting one fringe-sized tile per frontier node.
    std::vector<uint32_t> subtree(size, 1);
    for (uint32_t n = size; n-- > 0;) {
        const ClassLayout& layout = view.layout->cls(view.cls[n]);
        const NodeIdx* kids = view.scalars + view.scalarBase[n];
        for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
            if (kids[s] != view.zeroRow)
                subtree[n] += subtree[kids[s]];
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = view.collection(n, c);
            for (const NodeIdx* it = begin; it != end; ++it)
                subtree[n] += subtree[*it];
        }
    }

    // Pending tiles; a pending entry's index IS its tile id, so tiles
    // are numbered in BFS order over the tile tree and one tile's
    // children occupy a contiguous id range. Each entry owns a span of
    // pendingRoots: the subtree roots the tile grows from.
    struct Pending {
        uint32_t rootsBegin;
        uint32_t rootsEnd;
        uint32_t parent;
    };
    std::vector<NodeIdx> pendingRoots;
    pendingRoots.reserve(view.rootCount + size / cap + 1);
    std::vector<Pending> queue;
    queue.reserve(view.rootCount + size / cap + 1);
    for (uint32_t r = 0; r < view.rootCount; ++r) {
        pendingRoots.push_back(view.roots[r]);
        queue.push_back({r, r + 1, kNoTile});
    }
    out.rootTiles_ = view.rootCount;

    out.nodes_.reserve(size);
    std::vector<uint32_t> depth(size, 0);
    std::vector<NodeIdx> local; // per-tile BFS work list
    std::vector<NodeIdx> spill; // frontier left over when the cap hits

    for (uint32_t t = 0; t < queue.size(); ++t) {
        const Pending pending = queue[t]; // by value: queue reallocates
        Tile tile;
        tile.root = pendingRoots[pending.rootsBegin];
        tile.rootCount = pending.rootsEnd - pending.rootsBegin;
        tile.parent = pending.parent;
        tile.nodeBegin = static_cast<uint32_t>(out.nodes_.size());

        // Arena roots start at the init depth 0; spilled roots were
        // stamped when their parent tile discovered them.
        local.assign(pendingRoots.begin() + pending.rootsBegin,
                     pendingRoots.begin() + pending.rootsEnd);
        spill.clear();
        size_t head = 0;
        uint32_t collected = 0;
        while (head < local.size()) {
            const NodeIdx n = local[head++];
            if (collected >= cap) {
                // The tile is full: every frontier node already
                // discovered (its parent is in this tile) roots one of
                // this tile's child tiles.
                spill.push_back(n);
                continue;
            }
            out.nodes_.push_back(n);
            ++collected;
            const uint32_t next = depth[n] + 1;
            const ClassLayout& layout = view.layout->cls(view.cls[n]);
            const NodeIdx* kids = view.scalars + view.scalarBase[n];
            for (uint32_t s = 1; s <= layout.scalarCount; ++s) {
                if (kids[s] != view.zeroRow) {
                    depth[kids[s]] = next;
                    local.push_back(kids[s]);
                }
            }
            for (uint32_t c = 0; c < layout.collCount; ++c) {
                auto [begin, end] = view.collection(n, c);
                for (const NodeIdx* it = begin; it != end; ++it) {
                    depth[*it] = next;
                    local.push_back(*it);
                }
            }
        }
        tile.nodeEnd = static_cast<uint32_t>(out.nodes_.size());

        // Pack consecutive frontier subtrees into child tiles until
        // each approaches the cap. Without packing, the fringe of a
        // bushy tree degenerates into thousands of few-node tiles
        // (frontier width is proportional to tile size) and dispatch
        // overhead swamps the locality win. An oversized subtree gets
        // a group of its own and spills again recursively.
        tile.childBegin = static_cast<uint32_t>(queue.size());
        uint32_t groupBegin = static_cast<uint32_t>(pendingRoots.size());
        uint64_t groupNodes = 0;
        for (const NodeIdx n : spill) {
            if (groupNodes > 0 && groupNodes + subtree[n] > cap) {
                queue.push_back(
                    {groupBegin,
                     static_cast<uint32_t>(pendingRoots.size()), t});
                groupBegin = static_cast<uint32_t>(pendingRoots.size());
                groupNodes = 0;
            }
            pendingRoots.push_back(n);
            groupNodes += subtree[n];
        }
        if (groupNodes > 0)
            queue.push_back(
                {groupBegin, static_cast<uint32_t>(pendingRoots.size()),
                 t});
        tile.childEnd = static_cast<uint32_t>(queue.size());

        // Ascending id order doubles as ascending depth order (arena
        // ids are BFS within each tree), so the sorted span is valid
        // for a node-major two-sweep and groups local levels into
        // contiguous runs for the kernel path below.
        std::sort(out.nodes_.begin() + tile.nodeBegin,
                  out.nodes_.begin() + tile.nodeEnd);
        out.tiles_.push_back(tile);
    }
    checkInvariant(out.nodes_.size() <= size,
                   "TileGraph: node collected twice");

    // Per-tile local levels and class-homogeneous segments over the
    // tile-major, level-major, class-grouped order_ permutation.
    const uint32_t classCount =
        static_cast<uint32_t>(view.grammar->classes().size());
    out.order_.resize(out.nodes_.size());
    std::vector<uint32_t> classPos(classCount + 1);
    std::vector<uint32_t> cursor(classCount);
    for (Tile& tile : out.tiles_) {
        tile.levelBegin = static_cast<uint32_t>(out.levels_.size());
        uint32_t i = tile.nodeBegin;
        while (i < tile.nodeEnd) {
            const uint32_t d = depth[out.nodes_[i]];
            uint32_t j = i;
            while (j < tile.nodeEnd && depth[out.nodes_[j]] == d)
                ++j;
            // Stable counting sort of the level run [i, j) by class;
            // ascending id within each (level, class) group.
            std::fill(classPos.begin(), classPos.end(), 0);
            for (uint32_t k = i; k < j; ++k)
                ++classPos[view.cls[out.nodes_[k]]];
            uint32_t at = i;
            for (uint32_t c = 0; c < classCount; ++c) {
                const uint32_t count = classPos[c];
                classPos[c] = at;
                at += count;
            }
            std::copy(classPos.begin(), classPos.begin() + classCount,
                      cursor.begin());
            for (uint32_t k = i; k < j; ++k) {
                const NodeIdx node = out.nodes_[k];
                out.order_[cursor[view.cls[node]]++] = node;
            }
            Level level;
            level.segBegin = static_cast<uint32_t>(out.segments_.size());
            for (uint32_t c = 0; c < classCount; ++c) {
                const uint32_t groupEnd =
                    c + 1 < classCount ? classPos[c + 1] : j;
                LevelSegments::appendClassSegments(
                    out.order_.data(), classPos[c], groupEnd,
                    static_cast<sem::ClassId>(c), out.segments_);
            }
            level.segEnd = static_cast<uint32_t>(out.segments_.size());
            out.levels_.push_back(level);
            i = j;
        }
        tile.levelEnd = static_cast<uint32_t>(out.levels_.size());
    }

    Stats& st = out.stats_;
    st.tiles = static_cast<uint32_t>(out.tiles_.size());
    st.nodes = static_cast<uint32_t>(out.nodes_.size());
    uint32_t fanoutSum = 0;
    uint32_t branches = 0;
    for (const Tile& tile : out.tiles_) {
        st.maxTileNodes = std::max(st.maxTileNodes, tile.nodeCount());
        if (tile.childCount() == 0) {
            ++st.leafTiles;
        } else {
            fanoutSum += tile.childCount();
            ++branches;
        }
    }
    st.avgTileNodes =
        st.tiles == 0 ? 0.0 : static_cast<double>(st.nodes) / st.tiles;
    st.avgFanout =
        branches == 0 ? 0.0 : static_cast<double>(fanoutSum) / branches;
    // Tile-tree depth: tiles are numbered in BFS order, so a parent's
    // depth is final before its children are visited.
    std::vector<uint32_t> tdepth(out.tiles_.size(), 1);
    for (uint32_t t = 0; t < out.tiles_.size(); ++t) {
        if (out.tiles_[t].parent != kNoTile)
            tdepth[t] = tdepth[out.tiles_[t].parent] + 1;
        st.tileTreeDepth = std::max(st.tileTreeDepth, tdepth[t]);
    }
    return out;
}

const TileGraph&
TreeArena::tileGraph(uint64_t tileBytes)
{
    if (tileBytes == 0)
        tileBytes = kDefaultTileBytes;
    if (!tiles_ || tilesBytes_ != tileBytes) {
        tiles_ = std::make_shared<const TileGraph>(
            TileGraph::build(view(), tileBytes));
        tilesBytes_ = tileBytes;
    }
    return *tiles_;
}

} // namespace hecate::runtime
