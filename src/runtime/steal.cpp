#include "runtime/steal.hpp"

#include <chrono>
#include <thread>

#include "runtime/tiles.hpp"

namespace hecate::runtime {

namespace {

/** Yields before the idle loop falls back to sleeping. */
constexpr uint32_t kSpinYields = 64;
constexpr std::chrono::microseconds kIdleSleep{50};

} // namespace

StealDeques::StealDeques(ThreadPool* pool, Runner runner)
    : pool_(pool), runner_(std::move(runner))
{
    const uint32_t slots =
        1 + (pool_ ? static_cast<uint32_t>(pool_->workerCount()) : 0);
    slots_.reserve(slots);
    for (uint32_t s = 0; s < slots; ++s)
        slots_.push_back(std::make_unique<Slot>());
    // One driver task per pool-backed slot. Drivers live until stop_:
    // they service their slot's deque and steal across slots, so a
    // long-lived StealDeques occupies the pool. Uses are scoped (one
    // per execute call); on a shared pool a second StealDeques still
    // progresses because its calling thread drives slot 0 itself.
    for (uint32_t s = 1; s < slots; ++s) {
        pool_->submit([this, s] { driverLoop(s); });
        ++driversSubmitted_;
    }
}

StealDeques::~StealDeques()
{
    stop_.store(true, std::memory_order_release);
    // Drivers may still sit unstarted in the pool queue; help the pool
    // drain so each runs (and immediately exits, stop_ being set).
    while (driversExited_.load(std::memory_order_acquire) <
           driversSubmitted_) {
        if (pool_ && pool_->runOne())
            continue;
        std::this_thread::yield();
    }
}

void
StealDeques::push(uint32_t slot, const StealTask& task)
{
    if (failed_.load(std::memory_order_acquire))
        return;
    outstanding_.fetch_add(1, std::memory_order_acq_rel);
    Slot& s = *slots_[slot];
    std::lock_guard<std::mutex> lock(s.mutex);
    s.tasks.push_back(task);
    s.approx.store(static_cast<uint32_t>(s.tasks.size()),
                   std::memory_order_relaxed);
}

bool
StealDeques::takeOwn(uint32_t slot, StealTask& out)
{
    Slot& s = *slots_[slot];
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.tasks.empty())
        return false;
    out = s.tasks.back();
    s.tasks.pop_back();
    s.approx.store(static_cast<uint32_t>(s.tasks.size()),
                   std::memory_order_relaxed);
    return true;
}

bool
StealDeques::stealTask(uint32_t thief, StealTask& out)
{
    const uint32_t n = slotCount();
    for (uint32_t i = 1; i < n; ++i) {
        const uint32_t victim = (thief + i) % n;
        Slot& v = *slots_[victim];
        if (v.approx.load(std::memory_order_relaxed) == 0)
            continue;
        StealTask moved[1];
        std::vector<StealTask> rest;
        {
            std::lock_guard<std::mutex> lock(v.mutex);
            const size_t have = v.tasks.size();
            if (have == 0)
                continue;
            // Steal the oldest half from the front: the oldest tasks
            // are the highest remaining subtrees, so one steal moves
            // the largest block of work a victim can spare.
            const size_t take = (have + 1) / 2;
            moved[0] = v.tasks.front();
            v.tasks.pop_front();
            rest.reserve(take - 1);
            for (size_t k = 1; k < take; ++k) {
                rest.push_back(v.tasks.front());
                v.tasks.pop_front();
            }
            v.approx.store(static_cast<uint32_t>(v.tasks.size()),
                           std::memory_order_relaxed);
            steals_.fetch_add(take, std::memory_order_relaxed);
        }
        if (!rest.empty()) {
            Slot& mine = *slots_[thief];
            std::lock_guard<std::mutex> lock(mine.mutex);
            for (const StealTask& t : rest)
                mine.tasks.push_back(t);
            mine.approx.store(static_cast<uint32_t>(mine.tasks.size()),
                              std::memory_order_relaxed);
        }
        out = moved[0];
        return true;
    }
    return false;
}

bool
StealDeques::runTask(uint32_t slot)
{
    StealTask task;
    if (!takeOwn(slot, task) && !stealTask(slot, task))
        return false;
    if (!failed_.load(std::memory_order_acquire)) {
        try {
            runner_(task, slot);
            executed_.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            recordFailure();
        }
    }
    // Dropped-after-failure tasks still count down, so drive()'s
    // failure exit (outstanding == 0) is reachable.
    outstanding_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
}

void
StealDeques::drive(uint32_t slot, const std::function<bool()>& done)
{
    uint32_t idle = 0;
    for (;;) {
        if (done())
            return;
        if (failed_.load(std::memory_order_acquire) &&
            outstanding_.load(std::memory_order_acquire) == 0)
            return;
        if (runTask(slot)) {
            idle = 0;
            continue;
        }
        // Do NOT help via pool->runOne() here: the pool queue holds
        // our own driver loops, and running one inline would not
        // return until stop_ — long after this join completes.
        if (++idle < kSpinYields)
            std::this_thread::yield();
        else
            std::this_thread::sleep_for(kIdleSleep);
    }
}

void
StealDeques::driverLoop(uint32_t slot)
{
    uint32_t idle = 0;
    while (!stop_.load(std::memory_order_acquire)) {
        if (runTask(slot)) {
            idle = 0;
            continue;
        }
        if (++idle < kSpinYields)
            std::this_thread::yield();
        else
            std::this_thread::sleep_for(kIdleSleep);
    }
    driversExited_.fetch_add(1, std::memory_order_release);
}

void
StealDeques::recordFailure() noexcept
{
    std::lock_guard<std::mutex> lock(errorMutex_);
    if (!error_)
        error_ = std::current_exception();
    failed_.store(true, std::memory_order_release);
}

void
StealDeques::rethrowIfFailed()
{
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errorMutex_);
        err = error_;
    }
    if (err)
        std::rethrow_exception(err);
}

TileScheduler::Stats
TileScheduler::run(const TileGraph& graph, ThreadPool* pool,
                   const TileFn& pre, const TileFn& post)
{
    Stats st;
    const uint32_t tiles = graph.tileCount();
    st.tiles = tiles;
    if (tiles == 0)
        return st;

    if (!pool || pool->workerCount() == 0 || tiles == 1) {
        // Sequential: explicit-stack DFS over the tile tree. The
        // (tile, postPhase) stack bounds memory by the tile-tree
        // depth; recursion would not (a degenerate chain of tiles is
        // as deep as nodes / nodesPerTile).
        std::vector<std::pair<uint32_t, bool>> stack;
        for (uint32_t r = graph.rootTileCount(); r-- > 0;)
            stack.emplace_back(r, false);
        while (!stack.empty()) {
            const auto [t, postPhase] = stack.back();
            stack.pop_back();
            if (postPhase) {
                post(t, 0);
                continue;
            }
            pre(t, 0);
            stack.emplace_back(t, true);
            const TileGraph::Tile& tile = graph.tile(t);
            for (uint32_t c = tile.childEnd; c-- > tile.childBegin;)
                stack.emplace_back(c, false);
        }
        return st;
    }

    // Parallel: one StealTask per tile. pending[t] counts t's
    // un-posted child tiles; the worker that completes the last child
    // bubbles the parent's post. postsRemaining reaching zero is the
    // (barrier-free) termination condition.
    std::vector<std::atomic<uint32_t>> pending(tiles);
    for (uint32_t t = 0; t < tiles; ++t) {
        pending[t].store(graph.tile(t).childCount(),
                         std::memory_order_relaxed);
    }
    std::atomic<uint32_t> postsRemaining{tiles};

    StealDeques* dequesPtr = nullptr;
    StealDeques deques(
        pool, [&](const StealTask& task, uint32_t slot) {
            const uint32_t t = static_cast<uint32_t>(task.a);
            pre(t, slot);
            const TileGraph::Tile& tile = graph.tile(t);
            // Reversed push + LIFO pop = first child next on this
            // worker: depth-first descent into still-warm data, while
            // the remaining children sit at the deque front for
            // thieves.
            for (uint32_t c = tile.childEnd; c-- > tile.childBegin;)
                dequesPtr->push(slot, StealTask{c, 0, 0});
            if (tile.childCount() != 0)
                return;
            // Leaf: post it, then bubble posts up the parent chain as
            // long as we just retired the last child. Iterative on
            // purpose — a chain of tiles is far deeper than any safe
            // recursion budget.
            uint32_t cur = t;
            for (;;) {
                post(cur, slot);
                postsRemaining.fetch_sub(1, std::memory_order_release);
                const uint32_t parent = graph.tile(cur).parent;
                if (parent == kNoTile)
                    break;
                if (pending[parent].fetch_sub(
                        1, std::memory_order_acq_rel) != 1)
                    break;
                cur = parent;
            }
        });
    dequesPtr = &deques;

    for (uint32_t r = 0; r < graph.rootTileCount(); ++r)
        deques.push(0, StealTask{r, 0, 0});
    deques.drive(0, [&] {
        return postsRemaining.load(std::memory_order_acquire) == 0;
    });
    st.steals = deques.steals();
    deques.rethrowIfFailed();
    return st;
}

} // namespace hecate::runtime
