#include "runtime/arena.hpp"

#include <algorithm>
#include <deque>

#include "runtime/edit_state.hpp"

namespace hecate::runtime {

// Out of line for the unique_ptr<EditState> member; copies deep-copy
// the edit bookkeeping so an edited arena's duplicate stays edited.
TreeArena::TreeArena(const sem::Grammar& grammar)
    : grammar_(&grammar), layout_(grammar)
{
}

TreeArena::~TreeArena() = default;
TreeArena::TreeArena(TreeArena&&) noexcept = default;
TreeArena& TreeArena::operator=(TreeArena&&) noexcept = default;

TreeArena::TreeArena(const TreeArena& other)
    : grammar_(other.grammar_), layout_(other.layout_), cls_(other.cls_),
      scalarBase_(other.scalarBase_), collBase_(other.collBase_),
      scalars_(other.scalars_), collRanges_(other.collRanges_),
      collElems_(other.collElems_), columns_(other.columns_),
      segments_(other.segments_), tiles_(other.tiles_),
      tilesBytes_(other.tilesBytes_), zeroRow_(other.zeroRow_),
      edits_(other.edits_ ? std::make_unique<EditState>(*other.edits_)
                          : nullptr)
{
    // colPtrs_ left empty: view() rebuilds it against our columns.
}

TreeArena&
TreeArena::operator=(const TreeArena& other)
{
    if (this != &other) {
        TreeArena copy(other);
        *this = std::move(copy);
    }
    return *this;
}

// ---------------------------------------------------------------------------
// Layout
// ---------------------------------------------------------------------------

Layout::Layout(const sem::Grammar& grammar)
{
    attrColBase_.resize(grammar.interfaces().size(), 0);
    for (const sem::InterfaceInfo& iface : grammar.interfaces()) {
        attrColBase_[iface.id] = columnCount_;
        for (const sem::AttributeInfo& attr : iface.attrs)
            columnIsInput_.push_back(attr.isInput);
        columnCount_ += static_cast<uint32_t>(iface.attrs.size());
    }

    classes_.resize(grammar.classes().size());
    for (const sem::ClassInfo& cls : grammar.classes()) {
        ClassLayout& layout = classes_[cls.id];
        layout.scalarSlotOf.assign(cls.children.size(), -1);
        layout.collSlotOf.assign(cls.children.size(), -1);
        for (const sem::ChildInfo& child : cls.children) {
            if (child.collection)
                layout.collSlotOf[child.id] =
                    static_cast<int32_t>(layout.collCount++);
            else
                layout.scalarSlotOf[child.id] =
                    static_cast<int32_t>(layout.scalarCount++);
        }
    }
}

// ---------------------------------------------------------------------------
// Builder: shared BFS structure assembly for fromTree and generate
// ---------------------------------------------------------------------------

/**
 * Assembles arena structure in BFS order. Indices are assigned when a
 * node is discovered (enqueued) and its structure rows are appended
 * when it is processed (dequeued); FIFO order makes those coincide.
 */
class ArenaBuilder {
  public:
    explicit ArenaBuilder(TreeArena& arena) : arena_(arena) {}

    /** Append structure rows for node @p cls; returns its index. */
    NodeIdx beginNode(sem::ClassId cls)
    {
        const ClassLayout& layout = arena_.layout_.cls(cls);
        NodeIdx idx = static_cast<NodeIdx>(arena_.cls_.size());
        arena_.cls_.push_back(cls);
        arena_.scalarBase_.push_back(
            static_cast<uint32_t>(arena_.scalars_.size()));
        arena_.collBase_.push_back(
            static_cast<uint32_t>(arena_.collRanges_.size()));
        // Row 0 of every scalar block is the node's own index, so
        // compiled operands address self and children uniformly
        // (slot 0 = self, child slot c lives at row c + 1).
        arena_.scalars_.push_back(idx);
        arena_.scalars_.insert(arena_.scalars_.end(), layout.scalarCount,
                               kNone);
        return idx;
    }

    void setScalar(NodeIdx node, uint32_t slot, NodeIdx target)
    {
        arena_.scalars_[arena_.scalarBase_[node] + 1 + slot] = target;
    }

    /** Reserve a contiguous @p count-element range for the next
     *  collection slot of @p node (slots reserved in ChildId order). */
    uint32_t reserveCollection(uint32_t count)
    {
        CollRange range;
        range.begin = static_cast<uint32_t>(arena_.collElems_.size());
        range.count = count;
        arena_.collRanges_.push_back(range);
        arena_.collElems_.insert(arena_.collElems_.end(), count, kNone);
        return range.begin;
    }

    void setElement(uint32_t rangeBegin, uint32_t offset, NodeIdx target)
    {
        arena_.collElems_[rangeBegin + offset] = target;
    }

    /**
     * Finalize once the node count is final: absent scalar entries
     * become the zero-row index (so child loads need no absent check)
     * and every column gets one extra row — the always-zero row that
     * absent-child reads hit. Writes never target it: the executor
     * skips vacuous evals outright (a shared discard cell would race
     * between parallel workers).
     */
    void allocateColumns()
    {
        const NodeIdx zeroRow = static_cast<NodeIdx>(arena_.cls_.size());
        for (NodeIdx& s : arena_.scalars_) {
            if (s == kNone)
                s = zeroRow;
        }
        arena_.zeroRow_ = zeroRow;
        arena_.columns_.assign(
            arena_.layout_.columnCount(),
            std::vector<int64_t>(arena_.cls_.size() + 1, 0));
    }

  private:
    TreeArena& arena_;
};

// ---------------------------------------------------------------------------
// fromTree
// ---------------------------------------------------------------------------

TreeArena
TreeArena::fromTree(const tree::Tree& tree)
{
    if (tree.root() == tree::kNoNode)
        userError("TreeArena::fromTree: tree has no root");

    TreeArena arena(tree.grammar());
    ArenaBuilder builder(arena);
    const sem::Grammar& grammar = tree.grammar();

    std::vector<NodeIdx> arenaIdx(tree.size(), kNone);
    std::deque<tree::NodeId> queue;
    NodeIdx next = 0;
    arenaIdx[tree.root()] = next++;
    queue.push_back(tree.root());

    while (!queue.empty()) {
        tree::NodeId treeId = queue.front();
        queue.pop_front();
        const tree::Node& node = tree.node(treeId);
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        const ClassLayout& layout = arena.layout_.cls(node.cls);
        NodeIdx idx = builder.beginNode(node.cls);

        for (const sem::ChildInfo& child : cls.children) {
            const tree::ChildSlot& slot = node.children[child.id];
            if (child.collection) {
                uint32_t begin = builder.reserveCollection(
                    static_cast<uint32_t>(slot.elems.size()));
                for (uint32_t i = 0; i < slot.elems.size(); ++i) {
                    arenaIdx[slot.elems[i]] = next++;
                    builder.setElement(begin, i, arenaIdx[slot.elems[i]]);
                    queue.push_back(slot.elems[i]);
                }
            } else if (slot.node != tree::kNoNode) {
                arenaIdx[slot.node] = next++;
                builder.setScalar(
                    idx,
                    static_cast<uint32_t>(layout.scalarSlotOf[child.id]),
                    arenaIdx[slot.node]);
                queue.push_back(slot.node);
            }
        }
    }

    builder.allocateColumns();
    for (tree::NodeId treeId = 0; treeId < tree.size(); ++treeId) {
        const tree::Node& node = tree.node(treeId);
        NodeIdx idx = arenaIdx[treeId];
        checkInvariant(idx != kNone, "fromTree: unreachable node");
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        uint32_t base = arena.layout_.column(cls.iface, 0);
        for (sem::AttrId attr = 0; attr < node.values.size(); ++attr)
            arena.columns_[base + attr][idx] = node.values[attr];
    }
    return arena;
}

// ---------------------------------------------------------------------------
// generate
// ---------------------------------------------------------------------------

namespace {

/** True when @p cls can close the frontier (all scalars optional). */
bool
isTerminalClass(const sem::Grammar& grammar, sem::ClassId cls)
{
    for (const sem::ChildInfo& child : grammar.cls(cls).children) {
        if (!child.collection && !child.optional)
            return false;
    }
    return true;
}

/** Deterministic per-cell input value (order-independent). */
int64_t
inputValue(const GenConfig& config, uint64_t col, uint64_t node)
{
    uint64_t h = splitmix64(config.seed ^ (col << 40) ^ node);
    // Span arithmetic stays in uint64: the int64 difference overflows
    // for extreme ranges (lo = INT64_MIN, hi = INT64_MAX), and that
    // full-width range wraps the span to 0 — every value is in range.
    uint64_t span = static_cast<uint64_t>(config.inputHi) -
                    static_cast<uint64_t>(config.inputLo) + 1;
    if (span == 0)
        return static_cast<int64_t>(h);
    return static_cast<int64_t>(static_cast<uint64_t>(config.inputLo) +
                                h % span);
}

} // namespace

TreeArena
TreeArena::generate(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                    const GenConfig& config)
{
    if (config.targetNodes == 0)
        userError("TreeArena::generate: targetNodes must be positive");
    if (config.inputHi < config.inputLo)
        userError("TreeArena::generate: empty input value range");
    if (grammar.implementers(rootIface).empty())
        userError("TreeArena::generate: root interface has no implementing "
                  "classes");

    TreeArena arena(grammar);
    ArenaBuilder builder(arena);
    Rng rng(splitmix64(config.seed));

    // A discovered-but-unbuilt node: where its index must be recorded
    // is already written (indices are assigned at discovery); we only
    // need its class candidates and depth.
    struct Pending {
        const std::vector<sem::ClassId>* candidates;
        uint32_t depth;
    };
    std::deque<Pending> queue;

    // Budget counts assigned node indices; required children may push
    // it below zero ("roughly targetNodes"). The hard cap bounds
    // pathological all-required grammars.
    int64_t budget = static_cast<int64_t>(config.targetNodes) - 1;
    const uint64_t hardCap =
        static_cast<uint64_t>(config.targetNodes) * 4 + 1024;

    queue.push_back(Pending{&grammar.implementers(rootIface), 1});
    uint64_t assigned = 1;

    // Every child index goes through here. Growth proper is stopped by
    // the budget; only required-child expansion can keep claiming
    // indices past it, so hitting the hard cap means the grammar's
    // required closure admits no tree near the requested size (it
    // would otherwise loop forever). The NodeIdx check guards the
    // narrowing cast: one extra row (the zero row) must also fit.
    auto claimIndex = [&]() -> NodeIdx {
        if (assigned >= hardCap) {
            userError("TreeArena::generate: required children overran "
                      "the node hard cap; the grammar admits no tree "
                      "near the requested size");
        }
        if (assigned + 1 >= static_cast<uint64_t>(kNone)) {
            userError("TreeArena::generate: node count overflows 32-bit "
                      "node indices");
        }
        return static_cast<NodeIdx>(assigned++);
    };

    while (!queue.empty()) {
        Pending pending = queue.front();
        queue.pop_front();

        const bool expandable =
            budget > 0 && assigned < hardCap &&
            (config.maxDepth == 0 || pending.depth < config.maxDepth);

        // Pick the class. While growing, bias hard toward classes that
        // have children (a uniform pick over {branch, leaf} candidates
        // is a critical branching process — trees stay tiny no matter
        // the budget); once the budget is spent, close the frontier
        // with terminal classes.
        std::vector<sem::ClassId> usable;
        std::vector<sem::ClassId> expanding;
        for (sem::ClassId cls : *pending.candidates) {
            if (expandable || isTerminalClass(grammar, cls))
                usable.push_back(cls);
            if (expandable && !grammar.cls(cls).children.empty())
                expanding.push_back(cls);
        }
        if (!expanding.empty() && expanding.size() < usable.size() &&
            rng.below(8) != 0) {
            usable = expanding;
        }
        if (usable.empty()) {
            if (config.maxDepth != 0 && pending.depth >= config.maxDepth) {
                userError("TreeArena::generate: grammar admits no tree "
                          "within the depth cap (no terminal class for a "
                          "required child)");
            }
            // Budget exhausted but every candidate has required
            // children: keep expanding required paths only.
            usable.assign(pending.candidates->begin(),
                          pending.candidates->end());
        }
        sem::ClassId cls = usable[rng.below(usable.size())];
        NodeIdx idx = builder.beginNode(cls);

        const sem::ClassInfo& info = grammar.cls(cls);
        const ClassLayout& layout = arena.layout_.cls(cls);
        for (const sem::ChildInfo& child : info.children) {
            if (child.collection) {
                uint32_t count = 0;
                if (expandable) {
                    count = static_cast<uint32_t>(
                        1 + rng.below(std::max(1u, config.maxCollection)));
                    count = static_cast<uint32_t>(std::min<int64_t>(
                        count, std::max<int64_t>(budget, 0)));
                }
                uint32_t begin = builder.reserveCollection(count);
                for (uint32_t i = 0; i < count; ++i) {
                    builder.setElement(begin, i, claimIndex());
                    --budget;
                    queue.push_back(Pending{&child.allowedClasses,
                                            pending.depth + 1});
                }
            } else {
                bool present = !child.optional || expandable;
                if (child.optional && config.maxDepth != 0 &&
                    pending.depth >= config.maxDepth)
                    present = false;
                if (!present)
                    continue;
                builder.setScalar(
                    idx,
                    static_cast<uint32_t>(layout.scalarSlotOf[child.id]),
                    claimIndex());
                --budget;
                queue.push_back(
                    Pending{&child.allowedClasses, pending.depth + 1});
            }
        }
    }

    builder.allocateColumns();
    for (NodeIdx node = 0; node < arena.size(); ++node) {
        const sem::ClassInfo& info = grammar.cls(arena.cls_[node]);
        const sem::InterfaceInfo& iface = grammar.iface(info.iface);
        uint32_t base = arena.layout_.column(info.iface, 0);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            if (iface.isInput(attr)) {
                arena.columns_[base + attr][node] =
                    inputValue(config, base + attr, node);
            }
        }
    }
    return arena;
}

// ---------------------------------------------------------------------------
// toTree and queries
// ---------------------------------------------------------------------------

tree::Tree
TreeArena::toTree() const
{
    if (edited())
        return compact().toTree();
    tree::Tree out(*grammar_);
    for (NodeIdx node = 0; node < size(); ++node) {
        tree::NodeId id = out.addNode(cls_[node]);
        checkInvariant(id == node, "toTree: id mismatch");
    }
    for (NodeIdx node = 0; node < size(); ++node) {
        const sem::ClassInfo& info = grammar_->cls(cls_[node]);
        const ClassLayout& layout = layout_.cls(cls_[node]);
        for (const sem::ChildInfo& child : info.children) {
            if (child.collection) {
                auto [begin, end] = collection(
                    node,
                    static_cast<uint32_t>(layout.collSlotOf[child.id]));
                for (const NodeIdx* it = begin; it != end; ++it)
                    out.addElement(node, child.id, *it);
            } else {
                NodeIdx target = scalarChild(
                    node,
                    static_cast<uint32_t>(layout.scalarSlotOf[child.id]));
                if (target != kNone)
                    out.setScalar(node, child.id, target);
            }
        }
        const sem::InterfaceInfo& iface = grammar_->iface(info.iface);
        uint32_t base = layout_.column(info.iface, 0);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr)
            out.node(node).values[attr] = columns_[base + attr][node];
    }
    out.setRoot(0);
    return out;
}

uint32_t
TreeArena::depth() const
{
    if (size() == 0)
        return 0;
    // BFS order guarantees children have larger indices, so one
    // forward pass settles every depth.
    std::vector<uint32_t> depth(size(), 0);
    depth[0] = 1;
    uint32_t deepest = 1;
    for (NodeIdx node = 0; node < size(); ++node) {
        const ClassLayout& layout = layout_.cls(cls_[node]);
        for (uint32_t s = 0; s < layout.scalarCount; ++s) {
            NodeIdx target = scalarChild(node, s);
            if (target != kNone)
                depth[target] = depth[node] + 1;
        }
        for (uint32_t c = 0; c < layout.collCount; ++c) {
            auto [begin, end] = collection(node, c);
            for (const NodeIdx* it = begin; it != end; ++it)
                depth[*it] = depth[node] + 1;
        }
        if (isLive(node))
            deepest = std::max(deepest, depth[node]);
    }
    return deepest;
}

void
TreeArena::clearOutputs()
{
    for (uint32_t col = 0; col < layout_.columnCount(); ++col) {
        if (!layout_.columnIsInput(col))
            std::fill(columns_[col].begin(), columns_[col].end(), 0);
    }
}

uint64_t
TreeArena::checksum() const
{
    // Real live rows only: the hidden zero row is not part of the
    // instance, and orphaned rows hold stale garbage after edits.
    uint64_t sum = 0;
    for (uint32_t col = 0; col < layout_.columnCount(); ++col) {
        if (layout_.columnIsInput(col))
            continue;
        const std::vector<int64_t>& column = columns_[col];
        for (NodeIdx node = 0; node < size(); ++node) {
            if (isLive(node))
                sum += splitmix64(static_cast<uint64_t>(column[node]) + col);
        }
    }
    return sum;
}

TreeArena
TreeArena::compact() const
{
    if (!edited())
        return *this;

    TreeArena out(*grammar_);
    ArenaBuilder builder(out);

    // BFS over the live structure, exactly like fromTree: indices are
    // assigned at discovery, structure rows appended at dequeue, so
    // the numbering depends only on the live shape — two arenas that
    // received the same edits compact to cell-identical arenas.
    std::vector<NodeIdx> newIdx(size(), kNone);
    std::deque<NodeIdx> queue;
    NodeIdx next = 0;
    newIdx[0] = next++;
    queue.push_back(0);
    while (!queue.empty()) {
        const NodeIdx old = queue.front();
        queue.pop_front();
        const sem::ClassInfo& info = grammar_->cls(cls_[old]);
        const ClassLayout& layout = layout_.cls(cls_[old]);
        const NodeIdx idx = builder.beginNode(cls_[old]);
        for (const sem::ChildInfo& child : info.children) {
            if (child.collection) {
                auto [begin, end] = collection(
                    old,
                    static_cast<uint32_t>(layout.collSlotOf[child.id]));
                const uint32_t rangeBegin = builder.reserveCollection(
                    static_cast<uint32_t>(end - begin));
                for (uint32_t i = 0; begin + i != end; ++i) {
                    newIdx[begin[i]] = next++;
                    builder.setElement(rangeBegin, i, newIdx[begin[i]]);
                    queue.push_back(begin[i]);
                }
            } else {
                const NodeIdx c = scalarChild(
                    old,
                    static_cast<uint32_t>(layout.scalarSlotOf[child.id]));
                if (c != kNone) {
                    newIdx[c] = next++;
                    builder.setScalar(
                        idx,
                        static_cast<uint32_t>(layout.scalarSlotOf[child.id]),
                        newIdx[c]);
                    queue.push_back(c);
                }
            }
        }
    }
    builder.allocateColumns();

    for (NodeIdx old = 0; old < size(); ++old) {
        if (newIdx[old] == kNone)
            continue;
        const sem::ClassInfo& info = grammar_->cls(cls_[old]);
        const sem::InterfaceInfo& iface = grammar_->iface(info.iface);
        const uint32_t base = layout_.column(info.iface, 0);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr)
            out.columns_[base + attr][newIdx[old]] =
                columns_[base + attr][old];
    }
    return out;
}

// ---------------------------------------------------------------------------
// treesEquivalent
// ---------------------------------------------------------------------------

bool
treesEquivalent(const tree::Tree& a, const tree::Tree& b)
{
    if (a.size() != b.size())
        return false;
    if ((a.root() == tree::kNoNode) != (b.root() == tree::kNoNode))
        return false;
    if (a.root() == tree::kNoNode)
        return true;

    // Iterative parallel walk (deep chains must not recurse).
    std::vector<std::pair<tree::NodeId, tree::NodeId>> stack;
    stack.emplace_back(a.root(), b.root());
    while (!stack.empty()) {
        auto [ai, bi] = stack.back();
        stack.pop_back();
        const tree::Node& an = a.node(ai);
        const tree::Node& bn = b.node(bi);
        if (an.cls != bn.cls || an.values != bn.values)
            return false;
        if (an.children.size() != bn.children.size())
            return false;
        for (size_t c = 0; c < an.children.size(); ++c) {
            const tree::ChildSlot& as = an.children[c];
            const tree::ChildSlot& bs = bn.children[c];
            if ((as.node == tree::kNoNode) != (bs.node == tree::kNoNode))
                return false;
            if (as.node != tree::kNoNode)
                stack.emplace_back(as.node, bs.node);
            if (as.elems.size() != bs.elems.size())
                return false;
            for (size_t i = 0; i < as.elems.size(); ++i)
                stack.emplace_back(as.elems[i], bs.elems[i]);
        }
    }
    return true;
}

} // namespace hecate::runtime
