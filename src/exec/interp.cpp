#include "exec/interp.hpp"

#include <atomic>
#include <unordered_map>

#include "sched/visit_plan.hpp"
#include "support/arith.hpp"

namespace hecate::exec {

namespace {

/** Expression evaluator for one rule application. */
class ExprEval {
  public:
    ExprEval(const tree::Tree& tree, tree::NodeId node) :
        tree_(tree), node_(node)
    {
    }

    int64_t eval(const ast::Expr& expr) const
    {
        switch (expr.kind) {
          case ast::ExprKind::Const:
            return expr.value;
          case ast::ExprKind::Select:
            return readSelect(expr.select);
          case ast::ExprKind::Binary:
            return evalBinary(expr);
          case ast::ExprKind::Call:
            return evalCall(expr);
          case ast::ExprKind::If:
            return eval(*expr.args[0]) != 0 ? eval(*expr.args[1])
                                            : eval(*expr.args[2]);
          case ast::ExprKind::Fold:
            return evalFold(expr);
        }
        internalError("ExprEval: unknown expression kind");
    }

  private:
    const sem::Grammar& grammar() const { return tree_.grammar(); }

    int64_t readSelect(const ast::Select& sel) const
    {
        const tree::Node& node = tree_.node(node_);
        const sem::ClassInfo& cls = grammar().cls(node.cls);
        if (sel.isSelf()) {
            const sem::InterfaceInfo& iface = grammar().iface(cls.iface);
            return node.values[iface.attrByName.at(sel.attr)];
        }
        sem::ChildId child_id = cls.childByName.at(sel.base);
        tree::NodeId target = node.children[child_id].node;
        if (target == tree::kNoNode)
            return 0; // absent optional child reads as 0
        const tree::Node& child = tree_.node(target);
        const sem::InterfaceInfo& iface =
            grammar().iface(grammar().cls(child.cls).iface);
        return child.values[iface.attrByName.at(sel.attr)];
    }

    int64_t evalBinary(const ast::Expr& expr) const
    {
        int64_t lhs = eval(*expr.args[0]);
        int64_t rhs = eval(*expr.args[1]);
        const std::string& op = expr.op;
        if (op == "+") return wrapAdd(lhs, rhs);
        if (op == "-") return wrapSub(lhs, rhs);
        if (op == "*") return wrapMul(lhs, rhs);
        if (op == "/") return wrapDiv(lhs, rhs);
        if (op == "%") return wrapMod(lhs, rhs);
        if (op == "<") return lhs < rhs ? 1 : 0;
        if (op == "<=") return lhs <= rhs ? 1 : 0;
        if (op == ">") return lhs > rhs ? 1 : 0;
        if (op == ">=") return lhs >= rhs ? 1 : 0;
        if (op == "==") return lhs == rhs ? 1 : 0;
        if (op == "!=") return lhs != rhs ? 1 : 0;
        internalError("ExprEval: unknown operator '" + op + "'");
    }

    int64_t evalCall(const ast::Expr& expr) const
    {
        if (expr.op == "abs")
            return wrapAbs(eval(*expr.args[0]));
        int64_t lhs = eval(*expr.args[0]);
        int64_t rhs = eval(*expr.args[1]);
        if (expr.op == "max")
            return lhs > rhs ? lhs : rhs;
        if (expr.op == "min")
            return lhs < rhs ? lhs : rhs;
        internalError("ExprEval: unknown function '" + expr.op + "'");
    }

    static int64_t combine(const std::string& fn, int64_t acc, int64_t v)
    {
        if (fn == "add") return wrapAdd(acc, v);
        if (fn == "mul") return wrapMul(acc, v);
        if (fn == "max") return acc > v ? acc : v;
        if (fn == "min") return acc < v ? acc : v;
        internalError("ExprEval: unknown fold function '" + fn + "'");
    }

    int64_t evalFold(const ast::Expr& expr) const
    {
        int64_t acc = eval(*expr.args[0]);
        const tree::Node& node = tree_.node(node_);
        const sem::ClassInfo& cls = grammar().cls(node.cls);
        sem::ChildId coll = cls.childByName.at(expr.select.base);
        for (tree::NodeId elem_id : node.children[coll].elems) {
            const tree::Node& elem = tree_.node(elem_id);
            const sem::InterfaceInfo& iface =
                grammar().iface(grammar().cls(elem.cls).iface);
            int64_t v = elem.values[iface.attrByName.at(expr.select.attr)];
            acc = combine(expr.op, acc, v);
        }
        return acc;
    }

    const tree::Tree& tree_;
    tree::NodeId node_;
};

/** Sequential/parallel traversal executor. */
class Executor {
  public:
    Executor(const sched::Skeleton& skeleton,
             const sched::Schedule& schedule, tree::Tree& tree,
             ThreadPool* pool, ExecStats* stats)
        : skeleton_(skeleton), schedule_(schedule), tree_(tree),
          pool_(pool), stats_(stats)
    {
    }

    void run() { visit(tree_.root()); }

  private:
    void bumpVisit()
    {
        if (stats_ != nullptr)
            ++stats_->nodeVisits;
    }

    void applyRule(tree::NodeId node_id, sem::RuleId rule_id)
    {
        const sem::RuleInfo& rule = skeleton_.grammar().rule(rule_id);
        tree::NodeId target = node_id;
        if (rule.lhsChild != sem::kInvalidId) {
            target = tree_.node(node_id).children[rule.lhsChild].node;
            if (target == tree::kNoNode)
                return; // vacuous write through an absent child
        }
        int64_t value = evalRule(tree_, node_id, rule);
        tree_.node(target).values[rule.lhs] = value;
        if (stats_ != nullptr)
            ++stats_->rulesEvaluated;
    }

    void visit(tree::NodeId node_id)
    {
        if (++depth_ > kMaxEvalDepth) {
            userError("tree is deeper than the interpreter's recursion "
                      "limit (" + std::to_string(kMaxEvalDepth) +
                      " levels); use the arena runtime "
                      "(runtime::execute) for adversarially deep trees");
        }
        bumpVisit();
        const tree::Node& node = tree_.node(node_id);
        const ast::CaseDecl& case_decl = skeleton_.caseFor(node.cls);
        for (const auto& stmt : case_decl.stmts)
            execStmt(node_id, *stmt);
        --depth_;
    }

    void execStmt(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = tree_.node(node_id);
        const sem::ClassInfo& cls = skeleton_.grammar().cls(node.cls);
        switch (stmt.kind) {
          case ast::TStmtKind::Hole: {
            sched::SlotId slot = skeleton_.slotOf(&stmt);
            if (skeleton_.slot(slot).candidates.empty())
                return;
            const auto& assignment = schedule_.bySlot[slot];
            if (assignment.has_value() &&
                skeleton_.slot(slot).context ==
                    sched::SlotContext::TopLevel) {
                applyRule(node_id, *assignment);
            }
            // In-loop assignments run at loop end (see expandBlock).
            return;
          }
          case ast::TStmtKind::Eval:
            applyRule(node_id, skeleton_.evalRule(&stmt));
            return;
          case ast::TStmtKind::Recur: {
            tree::NodeId target =
                node.children[cls.childByName.at(stmt.child)].node;
            if (target != tree::kNoNode)
                visit(target);
            return;
          }
          case ast::TStmtKind::Iterate:
            execIterate(node_id, stmt);
            return;
          case ast::TStmtKind::Parallel:
            execParallel(node_id, stmt);
            return;
        }
    }

    /**
     * Iterate: recur per element, then evaluate the block's scheduled
     * folds in body order. Evaluating the fold once after the loop is
     * value-equivalent to per-iteration accumulation because all
     * element attributes are final after their visit.
     */
    void execIterate(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = tree_.node(node_id);
        const sem::ClassInfo& cls = skeleton_.grammar().cls(node.cls);
        sem::ChildId coll = cls.childByName.at(stmt.child);

        bool has_recur = false;
        for (const auto& body_stmt : stmt.body)
            has_recur |= body_stmt->kind == ast::TStmtKind::Recur;
        if (has_recur) {
            for (tree::NodeId elem : node.children[coll].elems)
                visit(elem);
        }
        for (const auto& body_stmt : stmt.body) {
            if (body_stmt->kind == ast::TStmtKind::Hole) {
                sched::SlotId slot = skeleton_.slotOf(body_stmt.get());
                if (skeleton_.slot(slot).candidates.empty())
                    continue;
                const auto& assignment = schedule_.bySlot[slot];
                if (assignment.has_value())
                    applyRule(node_id, *assignment);
            } else if (body_stmt->kind == ast::TStmtKind::Eval) {
                applyRule(node_id, skeleton_.evalRule(body_stmt.get()));
            }
        }
    }

    void execParallel(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = tree_.node(node_id);
        const sem::ClassInfo& cls = skeleton_.grammar().cls(node.cls);

        std::vector<tree::NodeId> targets;
        if (!stmt.child.empty()) {
            sem::ChildId coll = cls.childByName.at(stmt.child);
            targets = node.children[coll].elems;
            if (pool_ != nullptr) {
                forkJoinVisit(targets);
            } else {
                for (tree::NodeId elem : targets)
                    visit(elem);
            }
            return;
        }
        // Statement form: each statement is a branch; only recurs can
        // carry work (resolve bans evals, and holes are candidate-free).
        for (const auto& body_stmt : stmt.body) {
            if (body_stmt->kind != ast::TStmtKind::Recur)
                continue;
            tree::NodeId target =
                node.children[cls.childByName.at(body_stmt->child)].node;
            if (target != tree::kNoNode)
                targets.push_back(target);
        }
        if (pool_ != nullptr) {
            forkJoinVisit(targets);
        } else {
            for (tree::NodeId target : targets)
                visit(target);
        }
    }

    void forkJoinVisit(const std::vector<tree::NodeId>& targets)
    {
        // Count visits in a local executor per task; the subtrees are
        // disjoint so tree mutation is race-free for valid schedules.
        std::atomic<uint64_t> visits{0};
        std::atomic<uint64_t> rules{0};
        for (tree::NodeId target : targets) {
            pool_->submit([this, target, &visits, &rules] {
                ExecStats local;
                Executor sub(skeleton_, schedule_, tree_, nullptr, &local);
                sub.visit(target);
                visits += local.nodeVisits;
                rules += local.rulesEvaluated;
            });
        }
        pool_->waitAll();
        if (stats_ != nullptr) {
            stats_->nodeVisits += visits.load();
            stats_->rulesEvaluated += rules.load();
        }
    }

    const sched::Skeleton& skeleton_;
    const sched::Schedule& schedule_;
    tree::Tree& tree_;
    ThreadPool* pool_;
    ExecStats* stats_;
    uint32_t depth_ = 0;
};

} // namespace

int64_t
evalRule(const tree::Tree& tree, tree::NodeId node, const sem::RuleInfo& rule)
{
    ExprEval evaluator(tree, node);
    return evaluator.eval(*rule.decl->rhs);
}

void
execute(const sched::Skeleton& skeleton, const sched::Schedule& schedule,
        tree::Tree& tree, ExecStats* stats)
{
    Executor executor(skeleton, schedule, tree, nullptr, stats);
    executor.run();
}

void
executeParallel(const sched::Skeleton& skeleton,
                const sched::Schedule& schedule, tree::Tree& tree,
                ThreadPool& pool, ExecStats* stats)
{
    Executor executor(skeleton, schedule, tree, &pool, stats);
    executor.run();
}

void
computeReference(tree::Tree& tree)
{
    const sem::Grammar& grammar = tree.grammar();

    // Structural writer map: location -> (context node, rule). Self
    // rules write their own node; child-LHS (inherited) rules write the
    // child from the parent's context.
    struct Ctx {
        tree::NodeId node = tree::kNoNode;
        sem::RuleId rule = sem::kInvalidId;
    };
    std::unordered_map<uint64_t, Ctx> writer_of;
    for (const tree::Node& node : tree.nodes()) {
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        for (sem::RuleId rule_id : cls.rules) {
            const sem::RuleInfo& rule = grammar.rule(rule_id);
            tree::NodeId target = node.id;
            if (rule.lhsChild != sem::kInvalidId) {
                target = node.children[rule.lhsChild].node;
                if (target == tree::kNoNode)
                    continue;
            }
            sched::Location loc{target, rule.lhs};
            if (!writer_of.emplace(loc.key(), Ctx{node.id, rule_id})
                     .second) {
                userError("reference evaluation: location written twice");
            }
        }
    }

    enum class Mark : uint8_t { White, Grey, Black };
    std::unordered_map<uint64_t, Mark> marks;

    // Recursive demand evaluation with cycle detection. The depth
    // guard bounds the *dependency chain* length (which can exceed the
    // tree depth, e.g. sibling folds chain through nx links).
    auto evalLoc = [&](auto&& self, tree::NodeId node_id, sem::AttrId attr,
                       uint32_t depth) -> int64_t {
        if (depth > kMaxEvalDepth) {
            userError("attribute dependency chain is longer than the "
                      "reference evaluator's recursion limit (" +
                      std::to_string(kMaxEvalDepth) + " links)");
        }
        tree::Node& node = tree.node(node_id);
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        if (iface.isInput(attr))
            return node.values[attr];
        sched::Location loc{node_id, attr};
        Mark& mark = marks[loc.key()];
        if (mark == Mark::Black)
            return node.values[attr];
        if (mark == Mark::Grey) {
            userError("cyclic attribute dependency at " + cls.name + "." +
                      iface.attrs[attr].name);
        }
        mark = Mark::Grey;
        auto writer_it = writer_of.find(loc.key());
        if (writer_it == writer_of.end()) {
            userError("reference evaluation: no rule computes " +
                      cls.name + "." + iface.attrs[attr].name);
        }
        tree::NodeId ctx_id = writer_it->second.node;
        const sem::RuleInfo& rule = grammar.rule(writer_it->second.rule);
        const tree::Node& ctx = tree.node(ctx_id);
        // Force dependencies first (relative to the rule's context).
        for (const sem::ReadDep& dep : rule.reads) {
            switch (dep.kind) {
              case sem::ReadDep::Kind::SelfAttr:
                self(self, ctx_id, dep.attr, depth + 1);
                break;
              case sem::ReadDep::Kind::ChildAttr: {
                tree::NodeId target = ctx.children[dep.child].node;
                if (target != tree::kNoNode)
                    self(self, target, dep.attr, depth + 1);
                break;
              }
              case sem::ReadDep::Kind::CollElem:
                for (tree::NodeId elem : ctx.children[dep.child].elems)
                    self(self, elem, dep.attr, depth + 1);
                break;
            }
        }
        int64_t value = evalRule(tree, ctx_id, rule);
        tree.node(node_id).values[attr] = value;
        marks[loc.key()] = Mark::Black;
        return value;
    };

    for (const tree::Node& node : tree.nodes()) {
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < node.values.size(); ++attr) {
            if (!iface.isInput(attr))
                evalLoc(evalLoc, node.id, attr, 0);
        }
    }
}

} // namespace hecate::exec
