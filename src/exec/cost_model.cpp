#include "exec/cost_model.hpp"

namespace hecate::exec {

namespace {

/** (work, span) pair with fork-join composition helpers. */
struct Cost {
    double work = 0.0;
    double span = 0.0;

    void seq(const Cost& other)
    {
        work += other.work;
        span += other.span;
    }
};

class CostAnalyzer {
  public:
    CostAnalyzer(const sched::Skeleton& skeleton,
                 const sched::Schedule& schedule, const tree::Tree& tree,
                 const CostParams& params, CostReport& report)
        : skeleton_(skeleton), schedule_(schedule), tree_(tree),
          params_(params), report_(report)
    {
    }

    Cost visit(tree::NodeId node_id)
    {
        ++report_.nodeVisits;
        Cost cost{params_.visitOverhead, params_.visitOverhead};
        const tree::Node& node = tree_.node(node_id);
        const ast::CaseDecl& case_decl = skeleton_.caseFor(node.cls);
        for (const auto& stmt : case_decl.stmts)
            cost.seq(stmtCost(node_id, *stmt));
        return cost;
    }

  private:
    Cost ruleCost(sem::RuleId rule) const
    {
        double c = params_.ruleUnit *
                   static_cast<double>(skeleton_.grammar().rule(rule).cost);
        return {c, c};
    }

    Cost holeCost(const ast::TStmt& stmt) const
    {
        sched::SlotId slot = skeleton_.slotOf(&stmt);
        if (skeleton_.slot(slot).candidates.empty())
            return {};
        const auto& assignment = schedule_.bySlot[slot];
        return assignment.has_value() ? ruleCost(*assignment) : Cost{};
    }

    Cost stmtCost(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = tree_.node(node_id);
        const sem::ClassInfo& cls = skeleton_.grammar().cls(node.cls);
        switch (stmt.kind) {
          case ast::TStmtKind::Hole:
            return holeCost(stmt);
          case ast::TStmtKind::Eval:
            return ruleCost(skeleton_.evalRule(&stmt));
          case ast::TStmtKind::Recur: {
            tree::NodeId target =
                node.children[cls.childByName.at(stmt.child)].node;
            return target == tree::kNoNode ? Cost{} : visit(target);
          }
          case ast::TStmtKind::Iterate: {
            sem::ChildId coll = cls.childByName.at(stmt.child);
            Cost cost;
            bool has_recur = false;
            for (const auto& body_stmt : stmt.body)
                has_recur |= body_stmt->kind == ast::TStmtKind::Recur;
            if (has_recur) {
                for (tree::NodeId elem : node.children[coll].elems)
                    cost.seq(visit(elem));
            }
            for (const auto& body_stmt : stmt.body) {
                if (body_stmt->kind == ast::TStmtKind::Hole) {
                    Cost rc = holeCost(*body_stmt);
                    // per-element accumulation cost
                    rc.work *= std::max<size_t>(
                        1, node.children[coll].elems.size());
                    rc.span = rc.work;
                    cost.seq(rc);
                } else if (body_stmt->kind == ast::TStmtKind::Eval) {
                    Cost rc = ruleCost(skeleton_.evalRule(body_stmt.get()));
                    rc.work *= std::max<size_t>(
                        1, node.children[coll].elems.size());
                    rc.span = rc.work;
                    cost.seq(rc);
                }
            }
            return cost;
          }
          case ast::TStmtKind::Parallel: {
            std::vector<Cost> branches;
            if (!stmt.child.empty()) {
                sem::ChildId coll = cls.childByName.at(stmt.child);
                for (tree::NodeId elem : node.children[coll].elems)
                    branches.push_back(visit(elem));
            } else {
                for (const auto& body_stmt : stmt.body) {
                    if (body_stmt->kind != ast::TStmtKind::Recur)
                        continue;
                    tree::NodeId target =
                        node.children[cls.childByName.at(body_stmt->child)]
                            .node;
                    if (target != tree::kNoNode)
                        branches.push_back(visit(target));
                }
            }
            Cost cost;
            double max_span = 0.0;
            for (const Cost& branch : branches) {
                cost.work += branch.work + params_.forkOverhead;
                max_span = std::max(max_span, branch.span);
            }
            cost.span = max_span + params_.forkOverhead;
            return cost;
          }
        }
        internalError("stmtCost: unknown statement kind");
    }

    const sched::Skeleton& skeleton_;
    const sched::Schedule& schedule_;
    const tree::Tree& tree_;
    const CostParams& params_;
    CostReport& report_;
};

} // namespace

CostReport
analyzeCost(const sched::Skeleton& skeleton, const sched::Schedule& schedule,
            const tree::Tree& tree, const CostParams& params)
{
    CostReport report;
    CostAnalyzer analyzer(skeleton, schedule, tree, params, report);
    Cost total = analyzer.visit(tree.root());
    report.work = total.work;
    report.span = total.span;
    return report;
}

} // namespace hecate::exec
