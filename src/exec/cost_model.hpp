#pragma once

/**
 * @file
 * Work/span cost model for traversal schedules.
 *
 * The evaluation host for this reproduction has a single hardware
 * thread, so the parallel speedups of Figs. 11/16 cannot manifest as
 * wall-clock time. This model computes them analytically instead:
 * *work* is the total cost of all node visits and rule evaluations,
 * *span* is the critical path through the fork-join structure, and the
 * modeled makespan on w workers follows Brent's bound
 * max(span, work/w) plus per-branch fork overhead. DESIGN.md documents
 * this substitution; the Fig. 11/16 benchmarks report both wall-clock
 * (1 thread) and modeled makespan.
 */

#include <algorithm>
#include <cstdint>

#include "sched/schedule.hpp"
#include "tree/tree.hpp"

namespace hecate::exec {

/** Cost coefficients (arbitrary units; defaults chosen so one node
 *  visit ~ a few rule evaluations, fork ~ several visits). */
struct CostParams {
    double visitOverhead = 1.0; ///< per node visit (dispatch, pointer chase)
    double ruleUnit = 0.25;     ///< per unit of RuleInfo::cost
    double forkOverhead = 4.0;  ///< per spawned parallel branch
};

/** Work/span totals for one schedule execution. */
struct CostReport {
    double work = 0.0;
    double span = 0.0;
    uint64_t nodeVisits = 0;

    /** Brent's bound on makespan with @p workers workers. */
    double makespan(uint32_t workers) const
    {
        if (workers == 0)
            workers = 1;
        return std::max(span, work / static_cast<double>(workers));
    }

    /** Modeled speedup over sequential execution. */
    double speedup(uint32_t workers) const
    {
        double m = makespan(workers);
        return m <= 0.0 ? 1.0 : work / m;
    }
};

/** Analyze the fork-join cost of running @p schedule over @p tree. */
CostReport analyzeCost(const sched::Skeleton& skeleton,
                       const sched::Schedule& schedule,
                       const tree::Tree& tree,
                       const CostParams& params = {});

} // namespace hecate::exec
