#pragma once

/**
 * @file
 * Value interpreter: runs a concrete schedule over a tree with real
 * integer semantics and fills in the output attributes.
 *
 * Two evaluation modes exist:
 *  - execute(): follows the traversal skeleton + schedule (a valid
 *    linear extension of the plan's happens-before order);
 *  - computeReference(): demand-driven memoized evaluation straight
 *    from the attribute grammar, independent of any schedule.
 *
 * "execute == computeReference on every tree" is the key semantic
 * property tying synthesized schedules back to the grammar (tested in
 * tests/test_exec.cpp).
 *
 * Value conventions (documented in README): reading an attribute
 * through an absent optional child yields 0 (which makes the paper's
 * sibling-fold rules like `self.h + nx.h1` behave as expected), and
 * x/0 == x%0 == 0.
 */

#include <cstdint>

#include "sched/schedule.hpp"
#include "support/thread_pool.hpp"
#include "tree/tree.hpp"

namespace hecate::exec {

/** Counters from one execution. */
struct ExecStats {
    uint64_t nodeVisits = 0;
    uint64_t rulesEvaluated = 0;
};

/**
 * Recursion budget of the interpreter's native-stack paths. execute()
 * recurses per tree level and computeReference() per attribute
 * dependency link; both throw UserError past this depth instead of
 * overflowing the thread stack (sanitizer builds inflate frames, so
 * the limit is conservative). The bytecode runtime (runtime/executor)
 * uses an explicit heap stack and has no such limit.
 */
inline constexpr uint32_t kMaxEvalDepth = 1000;

/**
 * Evaluate @p rule of @p node against the current tree values and
 * return the RHS value (does not store it).
 */
int64_t evalRule(const tree::Tree& tree, tree::NodeId node,
                 const sem::RuleInfo& rule);

/**
 * Execute the concrete traversal (@p skeleton completed by
 * @p schedule) over @p tree sequentially, storing every computed
 * attribute. The schedule must be valid (verify first); invalid
 * schedules produce unspecified values but never UB.
 */
void execute(const sched::Skeleton& skeleton,
             const sched::Schedule& schedule, tree::Tree& tree,
             ExecStats* stats = nullptr);

/**
 * Like execute() but runs `parallel` regions on @p pool. Requires a
 * verified schedule: parallel branches must be data-independent.
 */
void executeParallel(const sched::Skeleton& skeleton,
                     const sched::Schedule& schedule, tree::Tree& tree,
                     ThreadPool& pool, ExecStats* stats = nullptr);

/**
 * Demand-driven reference evaluation of every output attribute.
 * Throws UserError when the grammar instance has a dependency cycle.
 */
void computeReference(tree::Tree& tree);

} // namespace hecate::exec
