#pragma once

/**
 * @file
 * Resolved semantic model of an attribute grammar (L_a after name
 * resolution and validation). This is the central data structure of
 * Hecate: the schedule space, both symbolic encoders, the verifier,
 * the interpreter, the code generator, and both baselines all consume
 * it.
 *
 * Identifier spaces:
 *  - InterfaceId / ClassId / RuleId: dense, grammar-global.
 *  - AttrId: dense within an interface.
 *  - ChildId: dense within a class.
 */

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"

namespace hecate::sem {

using InterfaceId = uint32_t;
using ClassId = uint32_t;
using AttrId = uint32_t;
using ChildId = uint32_t;
using RuleId = uint32_t;

inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/** One attribute of an interface. */
struct AttributeInfo {
    std::string name;
    bool isInput = false;
};

/** A resolved interface: the attribute vocabulary shared by classes. */
struct InterfaceInfo {
    InterfaceId id = kInvalidId;
    std::string name;
    std::vector<AttributeInfo> attrs;
    std::unordered_map<std::string, AttrId> attrByName;
    uint32_t outputCount = 0;
    /** Per attribute: written by parents (true) vs by self rules. */
    std::vector<bool> inherited;

    bool isInput(AttrId attr) const { return attrs[attr].isInput; }
    bool isInherited(AttrId attr) const { return inherited[attr]; }
};

/** A resolved child declaration of a class. */
struct ChildInfo {
    ChildId id = kInvalidId;
    std::string name;
    InterfaceId iface = kInvalidId;       ///< interface of the child's nodes
    std::vector<ClassId> allowedClasses;  ///< classes instantiable here
    bool optional = false;
    bool collection = false;
};

/** One read dependency extracted from a rule's RHS. */
struct ReadDep {
    enum class Kind : uint8_t {
        SelfAttr,  ///< self.a
        ChildAttr, ///< c.a for a scalar child c
        CollElem,  ///< cs.a inside fold(f, init, cs.a)
    };

    Kind kind = Kind::SelfAttr;
    ChildId child = kInvalidId; ///< for ChildAttr / CollElem
    AttrId attr = kInvalidId;   ///< attr id within the target interface

    bool operator==(const ReadDep&) const = default;
};

/**
 * A resolved computation rule: `self.lhs := rhs` (synthesized) or
 * `child.lhs := rhs` (inherited — the parent writes the child's
 * attribute, enabling top-down passes such as position finalization).
 */
struct RuleInfo {
    RuleId id = kInvalidId;
    ClassId cls = kInvalidId;
    AttrId lhs = kInvalidId;               ///< output attribute written
    ChildId lhsChild = kInvalidId;         ///< target child; invalid = self
    const ast::RuleDecl* decl = nullptr;   ///< owned by Grammar's stored AST
    std::vector<ReadDep> reads;            ///< deduplicated read set
    bool isFold = false;
    ChildId foldChild = kInvalidId;        ///< collection folded over
    std::string pass;                      ///< pass tag (Grafter baseline)
    uint32_t cost = 1;                     ///< expression size (cost model)
};

/** A resolved class. */
struct ClassInfo {
    ClassId id = kInvalidId;
    std::string name;
    InterfaceId iface = kInvalidId;
    std::vector<ChildInfo> children;
    std::unordered_map<std::string, ChildId> childByName;
    std::vector<RuleId> rules;        ///< all rules, declaration order
    std::vector<RuleId> ruleForAttr;  ///< indexed by AttrId; kInvalidId=input
};

/**
 * A validated attribute grammar. Construct via analyze() (sem/analyzer).
 * Owns the underlying AST so RuleInfo::decl pointers stay valid.
 */
class Grammar {
  public:
    /**
     * Resolve and validate @p unit. Throws UserError on any semantic
     * violation (duplicate names, uncovered output attribute, collection
     * reads outside fold, ...).
     */
    static Grammar analyze(ast::GrammarAst unit);

    // Move-only: RuleInfo::decl points into the stored AST, so copying
    // would leave the copy aliasing the original's buffers.
    Grammar(Grammar&&) = default;
    Grammar& operator=(Grammar&&) = default;
    Grammar(const Grammar&) = delete;
    Grammar& operator=(const Grammar&) = delete;

    const std::vector<InterfaceInfo>& interfaces() const
    {
        return interfaces_;
    }
    const std::vector<ClassInfo>& classes() const { return classes_; }
    const std::vector<RuleInfo>& rules() const { return rules_; }

    const InterfaceInfo& iface(InterfaceId id) const
    {
        return interfaces_[id];
    }
    const ClassInfo& cls(ClassId id) const { return classes_[id]; }
    const RuleInfo& rule(RuleId id) const { return rules_[id]; }

    /** Lookup an interface by name; kInvalidId when absent. */
    InterfaceId findInterface(const std::string& name) const;

    /** Lookup a class by name; kInvalidId when absent. */
    ClassId findClass(const std::string& name) const;

    /** The rule computing `self.attrName` on class @p cls; kInvalidId when absent. */
    RuleId findRule(ClassId cls, const std::string& attrName) const;

    /** All classes implementing interface @p id. */
    const std::vector<ClassId>& implementers(InterfaceId id) const
    {
        return implementers_[id];
    }

    /** Total number of rules (the "# of Rules" column of Table 2). */
    size_t ruleCount() const { return rules_.size(); }

    /** Distinct pass tags in declaration order (Grafter baseline input). */
    std::vector<std::string> passNames() const;

    /** Human-readable description "Class.attr" of a rule. */
    std::string ruleName(RuleId id) const;

  private:
    friend class Analyzer;

    Grammar() = default;

    ast::GrammarAst ast_;
    std::vector<InterfaceInfo> interfaces_;
    std::vector<ClassInfo> classes_;
    std::vector<RuleInfo> rules_;
    std::vector<std::vector<ClassId>> implementers_;
    std::unordered_map<std::string, InterfaceId> interfaceByName_;
    std::unordered_map<std::string, ClassId> classByName_;
};

} // namespace hecate::sem
