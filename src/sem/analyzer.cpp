#include <algorithm>
#include <unordered_set>

#include "sem/grammar.hpp"

/**
 * @file
 * Semantic analysis for L_a: name resolution, the paper's single-
 * assignment discipline (each output attribute computed by exactly one
 * rule), and extraction of the read/write sets that drive dependency
 * constraint generation.
 */

namespace hecate::sem {

namespace {

/** Builtin scalar functions callable from rule RHS expressions. */
bool
isBuiltinFunction(const std::string& name)
{
    return name == "max" || name == "min" || name == "abs";
}

/** Builtin fold combiners. */
bool
isFoldFunction(const std::string& name)
{
    return name == "max" || name == "min" || name == "add" ||
           name == "mul";
}

} // namespace

/** Performs resolution + validation; friend of Grammar. */
class Analyzer {
  public:
    explicit Analyzer(ast::GrammarAst unit) { grammar_.ast_ = std::move(unit); }

    Grammar run()
    {
        resolveInterfaces();
        resolveClassHeaders();
        resolveChildren();
        resolveRules();
        return std::move(grammar_);
    }

  private:
    void resolveInterfaces()
    {
        for (const auto& decl : grammar_.ast_.interfaces) {
            if (grammar_.interfaceByName_.count(decl.name))
                userError("duplicate interface '" + decl.name + "'", decl.loc);
            InterfaceInfo info;
            info.id = static_cast<InterfaceId>(grammar_.interfaces_.size());
            info.name = decl.name;
            for (const auto& attr : decl.attrs) {
                if (info.attrByName.count(attr.name)) {
                    userError("duplicate attribute '" + attr.name +
                                  "' in interface '" + decl.name + "'",
                              attr.loc);
                }
                AttrId id = static_cast<AttrId>(info.attrs.size());
                info.attrByName.emplace(attr.name, id);
                info.attrs.push_back({attr.name, attr.isInput});
                if (!attr.isInput)
                    ++info.outputCount;
            }
            grammar_.interfaceByName_.emplace(info.name, info.id);
            grammar_.interfaces_.push_back(std::move(info));
        }
        grammar_.implementers_.resize(grammar_.interfaces_.size());
    }

    void resolveClassHeaders()
    {
        for (const auto& decl : grammar_.ast_.classes) {
            if (grammar_.classByName_.count(decl.name))
                userError("duplicate class '" + decl.name + "'", decl.loc);
            if (grammar_.interfaceByName_.count(decl.name)) {
                userError("class '" + decl.name +
                              "' collides with an interface name",
                          decl.loc);
            }
            InterfaceId iface = grammar_.findInterface(decl.interface);
            if (iface == kInvalidId) {
                userError("unknown interface '" + decl.interface +
                              "' for class '" + decl.name + "'",
                          decl.loc);
            }
            ClassInfo info;
            info.id = static_cast<ClassId>(grammar_.classes_.size());
            info.name = decl.name;
            info.iface = iface;
            grammar_.classByName_.emplace(info.name, info.id);
            grammar_.implementers_[iface].push_back(info.id);
            grammar_.classes_.push_back(std::move(info));
        }
    }

    void resolveChildren()
    {
        for (size_t ci = 0; ci < grammar_.ast_.classes.size(); ++ci) {
            const auto& decl = grammar_.ast_.classes[ci];
            ClassInfo& info = grammar_.classes_[ci];
            for (const auto& child_decl : decl.children) {
                if (info.childByName.count(child_decl.name)) {
                    userError("duplicate child '" + child_decl.name +
                                  "' in class '" + decl.name + "'",
                              child_decl.loc);
                }
                ChildInfo child;
                child.id = static_cast<ChildId>(info.children.size());
                child.name = child_decl.name;
                child.optional = child_decl.optional;
                child.collection = child_decl.collection;

                InterfaceId iface = grammar_.findInterface(child_decl.type);
                if (iface != kInvalidId) {
                    child.iface = iface;
                    child.allowedClasses = grammar_.implementers_[iface];
                } else {
                    ClassId target = grammar_.findClass(child_decl.type);
                    if (target == kInvalidId) {
                        userError("unknown child type '" + child_decl.type +
                                      "'",
                                  child_decl.loc);
                    }
                    child.iface = grammar_.classes_[target].iface;
                    child.allowedClasses = {target};
                }
                if (child.allowedClasses.empty()) {
                    userError("child type '" + child_decl.type +
                                  "' has no implementing classes",
                              child_decl.loc);
                }
                info.childByName.emplace(child.name, child.id);
                info.children.push_back(std::move(child));
            }
        }
    }

    void resolveRules()
    {
        for (size_t ci = 0; ci < grammar_.ast_.classes.size(); ++ci) {
            const auto& decl = grammar_.ast_.classes[ci];
            ClassInfo& info = grammar_.classes_[ci];
            const InterfaceInfo& iface = grammar_.interfaces_[info.iface];

            info.ruleForAttr.assign(iface.attrs.size(), kInvalidId);

            for (const auto& rule_decl : decl.rules) {
                RuleInfo rule;
                rule.id = static_cast<RuleId>(grammar_.rules_.size());
                rule.cls = info.id;
                rule.decl = &rule_decl;
                rule.pass = rule_decl.pass;

                const InterfaceInfo* target_iface = &iface;
                if (rule_decl.lhs.base != "self") {
                    // Inherited attribute: `child.attr := ...` written by
                    // the parent. Scalar children only.
                    auto child_it = info.childByName.find(
                        rule_decl.lhs.base);
                    if (child_it == info.childByName.end()) {
                        userError("rule LHS base '" + rule_decl.lhs.base +
                                      "' is neither self nor a child",
                                  rule_decl.loc);
                    }
                    const ChildInfo& child = info.children[child_it->second];
                    if (child.collection) {
                        userError("rules cannot write collection children",
                                  rule_decl.loc);
                    }
                    rule.lhsChild = child.id;
                    target_iface = &grammar_.interfaces_[child.iface];
                }
                auto lhs_it =
                    target_iface->attrByName.find(rule_decl.lhs.attr);
                if (lhs_it == target_iface->attrByName.end()) {
                    userError("unknown attribute '" + rule_decl.lhs.attr +
                                  "' on '" + rule_decl.lhs.base + "'",
                              rule_decl.loc);
                }
                rule.lhs = lhs_it->second;
                if (target_iface->isInput(rule.lhs)) {
                    userError("rule writes input attribute '" +
                                  rule_decl.lhs.attr + "'",
                              rule_decl.loc);
                }
                if (rule.lhsChild == kInvalidId) {
                    if (info.ruleForAttr[rule.lhs] != kInvalidId) {
                        userError("attribute '" + rule_decl.lhs.attr +
                                      "' assigned by more than one rule in "
                                      "class '" + decl.name + "'",
                                  rule_decl.loc);
                    }
                } else {
                    for (RuleId other : info.rules) {
                        const RuleInfo& o = grammar_.rules_[other];
                        if (o.lhsChild == rule.lhsChild &&
                            o.lhs == rule.lhs) {
                            userError("child attribute '" +
                                          rule_decl.lhs.str() +
                                          "' assigned by more than one rule",
                                      rule_decl.loc);
                        }
                    }
                }

                analyzeExpr(*rule_decl.rhs, info, rule, /*inFold=*/false);
                if (rule.isFold && rule.lhsChild != kInvalidId) {
                    userError("fold rules must write a self attribute",
                              rule_decl.loc);
                }
                dedupeReads(rule);

                if (rule.lhsChild == kInvalidId)
                    info.ruleForAttr[rule.lhs] = rule.id;
                info.rules.push_back(rule.id);
                grammar_.rules_.push_back(std::move(rule));
            }
        }
        classifyAttributes();
    }

    /**
     * Classify every output attribute as synthesized (self rules) or
     * inherited (parent rules) and enforce the coverage discipline:
     * an attribute may not be both; synthesized attributes need a self
     * rule in every implementer; inherited attributes need a rule for
     * every scalar child of that interface and forbid collections
     * (collections cannot receive per-element writes).
     */
    void classifyAttributes()
    {
        size_t iface_count = grammar_.interfaces_.size();
        std::vector<std::vector<bool>> by_self(iface_count);
        std::vector<std::vector<bool>> by_parent(iface_count);
        for (size_t i = 0; i < iface_count; ++i) {
            size_t n = grammar_.interfaces_[i].attrs.size();
            by_self[i].assign(n, false);
            by_parent[i].assign(n, false);
        }
        for (const RuleInfo& rule : grammar_.rules_) {
            const ClassInfo& cls = grammar_.classes_[rule.cls];
            if (rule.lhsChild == kInvalidId) {
                by_self[cls.iface][rule.lhs] = true;
            } else {
                by_parent[cls.children[rule.lhsChild].iface][rule.lhs] =
                    true;
            }
        }
        for (size_t i = 0; i < iface_count; ++i) {
            InterfaceInfo& iface = grammar_.interfaces_[i];
            iface.inherited.assign(iface.attrs.size(), false);
            for (AttrId a = 0; a < iface.attrs.size(); ++a) {
                if (iface.isInput(a)) {
                    if (by_self[i][a] || by_parent[i][a])
                        internalError("input attribute has a rule");
                    continue;
                }
                if (by_self[i][a] && by_parent[i][a]) {
                    userError("attribute '" + iface.attrs[a].name +
                              "' of interface '" + iface.name +
                              "' is written both by self rules and by "
                              "parent rules");
                }
                if (!by_self[i][a] && !by_parent[i][a]) {
                    userError("no rule computes output attribute '" +
                              iface.attrs[a].name + "' of interface '" +
                              iface.name + "'");
                }
                iface.inherited[a] = by_parent[i][a];
            }
        }

        // Coverage discipline per class.
        for (const ClassInfo& cls : grammar_.classes_) {
            const InterfaceInfo& iface = grammar_.interfaces_[cls.iface];
            for (AttrId a = 0; a < iface.attrs.size(); ++a) {
                if (iface.isInput(a) || iface.isInherited(a))
                    continue;
                if (cls.ruleForAttr[a] == kInvalidId) {
                    userError("class '" + cls.name +
                              "' has no rule for synthesized attribute '" +
                              iface.attrs[a].name + "'");
                }
            }
            for (const ChildInfo& child : cls.children) {
                const InterfaceInfo& child_iface =
                    grammar_.interfaces_[child.iface];
                for (AttrId a = 0; a < child_iface.attrs.size(); ++a) {
                    if (child_iface.isInput(a) ||
                        !child_iface.isInherited(a)) {
                        continue;
                    }
                    if (child.collection) {
                        userError("collection child '" + child.name +
                                  "' of class '" + cls.name +
                                  "' has inherited attribute '" +
                                  child_iface.attrs[a].name +
                                  "' which cannot be written per element");
                    }
                    bool covered = false;
                    for (RuleId rid : cls.rules) {
                        const RuleInfo& rule = grammar_.rules_[rid];
                        covered |= rule.lhsChild == child.id &&
                                   rule.lhs == a;
                    }
                    if (!covered) {
                        userError("class '" + cls.name +
                                  "' does not compute inherited "
                                  "attribute '" +
                                  child_iface.attrs[a].name +
                                  "' of child '" + child.name + "'");
                    }
                }
            }
        }
    }

    /** Collect reads from @p expr into @p rule; validates references. */
    void analyzeExpr(const ast::Expr& expr, const ClassInfo& cls,
                     RuleInfo& rule, bool inFold)
    {
        rule.cost += 1;
        switch (expr.kind) {
          case ast::ExprKind::Const:
            return;
          case ast::ExprKind::Select:
            analyzeRead(expr.select, cls, rule);
            return;
          case ast::ExprKind::Binary:
            analyzeExpr(*expr.args[0], cls, rule, inFold);
            analyzeExpr(*expr.args[1], cls, rule, inFold);
            return;
          case ast::ExprKind::Call:
            if (!isBuiltinFunction(expr.op)) {
                userError("unknown function '" + expr.op + "'", expr.loc);
            }
            if (expr.op == "abs" ? expr.args.size() != 1
                                 : expr.args.size() != 2) {
                userError("wrong arity for '" + expr.op + "'", expr.loc);
            }
            for (const auto& arg : expr.args)
                analyzeExpr(*arg, cls, rule, inFold);
            return;
          case ast::ExprKind::If:
            for (const auto& arg : expr.args)
                analyzeExpr(*arg, cls, rule, inFold);
            return;
          case ast::ExprKind::Fold: {
            if (inFold)
                userError("nested folds are not supported", expr.loc);
            if (rule.isFold) {
                userError("a rule may contain at most one fold", expr.loc);
            }
            if (!isFoldFunction(expr.op)) {
                userError("unknown fold function '" + expr.op + "'",
                          expr.loc);
            }
            auto child_it = cls.childByName.find(expr.select.base);
            if (child_it == cls.childByName.end()) {
                userError("unknown collection child '" + expr.select.base +
                              "'",
                          expr.loc);
            }
            const ChildInfo& child = cls.children[child_it->second];
            if (!child.collection) {
                userError("fold requires a collection child, '" +
                              expr.select.base + "' is scalar",
                          expr.loc);
            }
            const InterfaceInfo& child_iface =
                grammar_.interfaces_[child.iface];
            auto attr_it = child_iface.attrByName.find(expr.select.attr);
            if (attr_it == child_iface.attrByName.end()) {
                userError("unknown attribute '" + expr.select.attr +
                              "' on collection '" + expr.select.base + "'",
                          expr.loc);
            }
            rule.isFold = true;
            rule.foldChild = child.id;
            rule.reads.push_back(
                {ReadDep::Kind::CollElem, child.id, attr_it->second});
            analyzeExpr(*expr.args[0], cls, rule, /*inFold=*/true);
            return;
          }
        }
    }

    void analyzeRead(const ast::Select& sel, const ClassInfo& cls,
                     RuleInfo& rule)
    {
        if (sel.isSelf()) {
            const InterfaceInfo& iface = grammar_.interfaces_[cls.iface];
            auto it = iface.attrByName.find(sel.attr);
            if (it == iface.attrByName.end()) {
                userError("unknown attribute '" + sel.attr + "' on self",
                          sel.loc);
            }
            if (rule.lhsChild == kInvalidId && it->second == rule.lhs) {
                userError("rule for '" + sel.attr +
                              "' reads the attribute it defines",
                          sel.loc);
            }
            rule.reads.push_back(
                {ReadDep::Kind::SelfAttr, kInvalidId, it->second});
            return;
        }
        auto child_it = cls.childByName.find(sel.base);
        if (child_it == cls.childByName.end()) {
            userError("unknown access base '" + sel.base + "'", sel.loc);
        }
        const ChildInfo& child = cls.children[child_it->second];
        if (child.collection) {
            userError("collection child '" + sel.base +
                          "' may only be read through fold(...)",
                      sel.loc);
        }
        const InterfaceInfo& child_iface = grammar_.interfaces_[child.iface];
        auto attr_it = child_iface.attrByName.find(sel.attr);
        if (attr_it == child_iface.attrByName.end()) {
            userError("unknown attribute '" + sel.attr + "' on child '" +
                          sel.base + "'",
                      sel.loc);
        }
        if (rule.lhsChild == child.id && attr_it->second == rule.lhs) {
            userError("rule for '" + sel.str() +
                          "' reads the attribute it defines",
                      sel.loc);
        }
        rule.reads.push_back(
            {ReadDep::Kind::ChildAttr, child.id, attr_it->second});
    }

    static void dedupeReads(RuleInfo& rule)
    {
        std::vector<ReadDep> unique;
        for (const ReadDep& dep : rule.reads) {
            if (std::find(unique.begin(), unique.end(), dep) == unique.end())
                unique.push_back(dep);
        }
        rule.reads = std::move(unique);
    }

    Grammar grammar_;
};

Grammar
Grammar::analyze(ast::GrammarAst unit)
{
    Analyzer analyzer(std::move(unit));
    return analyzer.run();
}

} // namespace hecate::sem
