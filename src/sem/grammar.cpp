#include "sem/grammar.hpp"

namespace hecate::sem {

InterfaceId
Grammar::findInterface(const std::string& name) const
{
    auto it = interfaceByName_.find(name);
    return it == interfaceByName_.end() ? kInvalidId : it->second;
}

ClassId
Grammar::findClass(const std::string& name) const
{
    auto it = classByName_.find(name);
    return it == classByName_.end() ? kInvalidId : it->second;
}

RuleId
Grammar::findRule(ClassId cls_id, const std::string& attrName) const
{
    const ClassInfo& info = classes_[cls_id];
    const InterfaceInfo& iface_info = interfaces_[info.iface];
    auto it = iface_info.attrByName.find(attrName);
    if (it == iface_info.attrByName.end())
        return kInvalidId;
    return info.ruleForAttr[it->second];
}

std::vector<std::string>
Grammar::passNames() const
{
    std::vector<std::string> names;
    for (const RuleInfo& rule : rules_) {
        bool seen = false;
        for (const auto& name : names) {
            if (name == rule.pass) {
                seen = true;
                break;
            }
        }
        if (!seen)
            names.push_back(rule.pass);
    }
    return names;
}

std::string
Grammar::ruleName(RuleId id) const
{
    const RuleInfo& info = rules_[id];
    const ClassInfo& cls_info = classes_[info.cls];
    if (info.lhsChild != kInvalidId) {
        const ChildInfo& child = cls_info.children[info.lhsChild];
        const InterfaceInfo& child_iface = interfaces_[child.iface];
        return cls_info.name + "." + child.name + "." +
               child_iface.attrs[info.lhs].name;
    }
    const InterfaceInfo& iface_info = interfaces_[cls_info.iface];
    return cls_info.name + "." + iface_info.attrs[info.lhs].name;
}

} // namespace hecate::sem
