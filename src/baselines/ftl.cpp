#include "baselines/ftl.hpp"

#include <algorithm>
#include <unordered_map>

#include "sched/visit_plan.hpp"
#include "support/timer.hpp"
#include "synth/cegis.hpp"

namespace hecate::baselines {

namespace {

/** Region a rule's evaluation is assigned to within its class's visit. */
enum class Region : uint8_t { Unassigned, Pre, Post };

/**
 * FTL-style scheduler: chronological backtracking over the assignment
 * rule -> {pre, post} (evaluate before or after the recursive child
 * visits), with rules inside a region ordered by a stable topological
 * sort of intra-node dependencies — the visit structure FTL's Prolog
 * encoding searches over. Every partial assignment is re-tested by
 * interpretation over example trees (generate-and-test, no conflict
 * learning, no relational projection), and complete assignments are
 * verified against the bounded tree space.
 */
class FtlSearch {
  public:
    FtlSearch(const sem::Grammar& grammar, sem::InterfaceId rootIface,
              const tree::EnumConfig& config, uint64_t budget,
              FtlResult& result)
        : grammar_(grammar), rootIface_(rootIface), config_(config),
          budget_(budget), result_(result)
    {
        region_.assign(grammar_.rules().size(), Region::Unassigned);

        // Ground the schedule constraints over the full bounded tree
        // space — FTL's Prolog encoding quantifies over the whole
        // specification (it is correct by construction, not CEGIS), so
        // every propagation step pays spec-grade instantiation. This is
        // where its cost lives and why it scales with grammar size.
        tree::EnumConfig wide = config_;
        wide.perSlotOptions = std::max<size_t>(wide.perSlotOptions, 48);
        auto shapes = tree::enumerateShapes(grammar_, rootIface_, wide);
        for (const tree::ShapePtr& shape : shapes)
            examples_.push_back(tree::instantiate(grammar_, *shape));
        // Grounding volume scales with the specification: keep adding
        // sampled trees until the instantiated node count is
        // proportional to the rule count (Prolog grounds one relation
        // instance per rule per node).
        Rng rng(0xF71);
        tree::SampleConfig deep;
        deep.maxDepth = config_.maxDepth + 4;
        deep.optionalPresent = 0.65;
        size_t total_nodes = 0;
        size_t want = 60 * grammar_.rules().size();
        while (total_nodes < want && examples_.size() < 4096) {
            examples_.push_back(
                tree::sampleTree(grammar_, rootIface_, deep, rng));
            total_nodes += examples_.back().size();
        }

        // Structural potential-writer map per example tree.
        writerRules_.resize(examples_.size());
        for (size_t t = 0; t < examples_.size(); ++t) {
            const tree::Tree& tr = examples_[t];
            for (const tree::Node& node : tr.nodes()) {
                for (sem::RuleId rid : grammar_.cls(node.cls).rules) {
                    const sem::RuleInfo& rule = grammar_.rule(rid);
                    tree::NodeId target = node.id;
                    if (rule.lhsChild != sem::kInvalidId) {
                        target = node.children[rule.lhsChild].node;
                        if (target == tree::kNoNode)
                            continue;
                    }
                    sched::Location loc{target, rule.lhs};
                    writerRules_[t][loc.key()].push_back(rid);
                }
            }
        }
    }

    bool run()
    {
        for (const sem::ClassInfo& cls : grammar_.classes()) {
            for (const sem::ChildInfo& child : cls.children) {
                if (child.collection)
                    return false; // FTL handles layout chains only
            }
        }
        return search(0);
    }

    ast::TraversalDecl concreteTraversal() const
    {
        return buildTraversal(/*assignedOnly=*/false);
    }

  private:
    bool search(size_t index)
    {
        if (result_.assignmentsTried >= budget_) {
            result_.budgetExhausted = true;
            return false;
        }
        if (index == grammar_.rules().size())
            return finalCheck();

        sem::RuleId rule = static_cast<sem::RuleId>(index);
        bool is_inherited =
            grammar_.rule(rule).lhsChild != sem::kInvalidId;
        // Natural first guesses: inherited rules before the recursion,
        // synthesized rules after.
        Region order[2] = {is_inherited ? Region::Pre : Region::Post,
                           is_inherited ? Region::Post : Region::Pre};
        for (Region choice : order) {
            ++result_.assignmentsTried;
            region_[rule] = choice;
            if (partialConsistent() && search(index + 1))
                return true;
            region_[rule] = Region::Unassigned;
            ++result_.backtracks;
        }
        return false;
    }

    bool finalCheck()
    {
        sched::Skeleton concrete = sched::Skeleton::resolve(
            grammar_, buildTraversal(/*assignedOnly=*/false));
        sched::Schedule empty;
        empty.bySlot.assign(concrete.slotCount(), std::nullopt);
        synth::VerifyResult verdict = synth::verifySchedule(
            concrete, empty, rootIface_, config_);
        if (!verdict.ok)
            ++result_.backtracks;
        return verdict.ok;
    }

    /**
     * Build the traversal induced by the current region assignment:
     * per class, pre-region rules (topologically ordered), the
     * recursive visits, then post-region rules. Unassigned rules fall
     * into the post region when @p assignedOnly is false (so the final
     * traversal is complete) and are omitted otherwise.
     */
    ast::TraversalDecl buildTraversal(bool assignedOnly) const
    {
        ast::TraversalDecl decl;
        decl.name = "ftl";
        for (const sem::ClassInfo& cls : grammar_.classes()) {
            ast::CaseDecl case_decl;
            case_decl.className = cls.name;
            appendRegion(case_decl, cls, Region::Pre, assignedOnly);
            for (const sem::ChildInfo& child : cls.children) {
                case_decl.stmts.push_back(
                    ast::TStmt::makeRecur(child.name));
            }
            appendRegion(case_decl, cls, Region::Post, assignedOnly);
            decl.cases.push_back(std::move(case_decl));
        }
        return decl;
    }

    void appendRegion(ast::CaseDecl& caseDecl, const sem::ClassInfo& cls,
                      Region which, bool assignedOnly) const
    {
        std::vector<sem::RuleId> batch;
        for (sem::RuleId rid : cls.rules) {
            Region r = region_[rid];
            if (r == which ||
                (!assignedOnly && r == Region::Unassigned &&
                 which == Region::Post)) {
                batch.push_back(rid);
            }
        }
        // Stable topological order by intra-node (self) dependencies.
        std::vector<bool> emitted(grammar_.rules().size(), false);
        size_t remaining = batch.size();
        while (remaining > 0) {
            bool progress = false;
            for (sem::RuleId rid : batch) {
                if (emitted[rid])
                    continue;
                bool ready = true;
                for (const sem::ReadDep& dep : grammar_.rule(rid).reads) {
                    if (dep.kind != sem::ReadDep::Kind::SelfAttr)
                        continue;
                    for (sem::RuleId other : batch) {
                        if (other != rid && !emitted[other] &&
                            grammar_.rule(other).lhsChild ==
                                sem::kInvalidId &&
                            grammar_.rule(other).lhs == dep.attr) {
                            ready = false;
                        }
                    }
                }
                if (!ready)
                    continue;
                emitRule(caseDecl, cls, rid);
                emitted[rid] = true;
                --remaining;
                progress = true;
            }
            if (!progress) {
                // Intra-node cycle: emit in declaration order and let
                // the dependence test reject the assignment.
                for (sem::RuleId rid : batch) {
                    if (!emitted[rid]) {
                        emitRule(caseDecl, cls, rid);
                        emitted[rid] = true;
                        --remaining;
                    }
                }
            }
        }
    }

    void emitRule(ast::CaseDecl& caseDecl, const sem::ClassInfo& cls,
                  sem::RuleId rid) const
    {
        const sem::RuleInfo& rule = grammar_.rule(rid);
        if (rule.lhsChild != sem::kInvalidId) {
            const sem::ChildInfo& child = cls.children[rule.lhsChild];
            const sem::InterfaceInfo& child_iface =
                grammar_.iface(child.iface);
            caseDecl.stmts.push_back(ast::TStmt::makeEvalChild(
                child.name, child_iface.attrs[rule.lhs].name));
        } else {
            const sem::InterfaceInfo& iface = grammar_.iface(cls.iface);
            caseDecl.stmts.push_back(
                ast::TStmt::makeEval(iface.attrs[rule.lhs].name));
        }
    }

    /**
     * Generate-and-test over the example trees: interpret the partial
     * traversal (assigned rules only) and reject when some read can no
     * longer be satisfied — every potential writer rule is assigned
     * yet none of its write instances happens-before the read.
     */
    bool partialConsistent()
    {
        sched::Skeleton partial = sched::Skeleton::resolve(
            grammar_, buildTraversal(/*assignedOnly=*/true));
        for (size_t t = 0; t < examples_.size(); ++t) {
            sched::VisitPlan plan(partial, examples_[t]);
            for (const sched::Instance& inst : plan.instances()) {
                for (sched::Location loc :
                     plan.readsFor(inst, inst.rule)) {
                    const tree::Node& target =
                        examples_[t].node(loc.node);
                    const sem::ClassInfo& cls =
                        grammar_.cls(target.cls);
                    if (grammar_.iface(cls.iface).isInput(loc.attr))
                        continue;
                    if (!readPossible(plan, t, inst, loc))
                        return false;
                }
            }
        }
        return true;
    }

    bool readPossible(const sched::VisitPlan& plan, size_t t,
                      const sched::Instance& inst, sched::Location loc)
    {
        for (const sched::Writer& w : plan.writersOf(loc)) {
            if (plan.happensBefore(w.inst, inst.id))
                return true;
        }
        // No assigned writer precedes; a still-unassigned writer rule
        // may yet land in a position that precedes the read.
        auto it = writerRules_[t].find(loc.key());
        if (it == writerRules_[t].end())
            return false;
        for (sem::RuleId rid : it->second) {
            if (region_[rid] == Region::Unassigned)
                return true;
        }
        return false;
    }

    const sem::Grammar& grammar_;
    sem::InterfaceId rootIface_;
    const tree::EnumConfig& config_;
    uint64_t budget_;
    FtlResult& result_;
    std::vector<tree::Tree> examples_;
    std::vector<std::unordered_map<uint64_t, std::vector<sem::RuleId>>>
        writerRules_;
    std::vector<Region> region_;
};

} // namespace

FtlResult
ftlSynthesize(const sem::Grammar& grammar, sem::InterfaceId rootIface,
              const tree::EnumConfig& config, uint64_t budget)
{
    Timer timer;
    FtlResult result;
    FtlSearch search(grammar, rootIface, config, budget, result);
    if (search.run())
        result.traversal = search.concreteTraversal();
    result.seconds = timer.seconds();
    return result;
}

} // namespace hecate::baselines
