#pragma once

/**
 * @file
 * FTL baseline (Meyerovich et al., PPoPP 2013), reimplemented for the
 * Fig. 15 comparison.
 *
 * FTL translates layout semantics into a Prolog program and lets the
 * Prolog engine search for a schedule expressed as traversal visits
 * with pre/post evaluation positions. We reproduce that search
 * discipline: chronological backtracking over rule -> {pre, post}
 * region assignments, generate-and-test consistency checking by
 * re-interpreting the partial traversal over example trees after every
 * assignment, and full bounded verification of complete assignments.
 * No conflict learning and no relational projection — which is exactly
 * why it scales the way Fig. 15 shows.
 *
 * Collection (vector) children are not supported, matching FTL's
 * linked-chain layout grammars.
 */

#include <cstdint>
#include <optional>

#include "lang/ast.hpp"
#include "sem/grammar.hpp"
#include "tree/enumerate.hpp"

namespace hecate::baselines {

/** Outcome of the FTL-style search. */
struct FtlResult {
    /** The synthesized concrete traversal (empty when search failed). */
    std::optional<ast::TraversalDecl> traversal;
    uint64_t assignmentsTried = 0;
    uint64_t backtracks = 0;
    double seconds = 0.0;
    bool budgetExhausted = false;
};

/**
 * Search a complete pre/post schedule of @p grammar's rules with
 * chronological backtracking. @p budget caps the number of partial
 * assignments explored.
 */
FtlResult ftlSynthesize(const sem::Grammar& grammar,
                        sem::InterfaceId rootIface,
                        const tree::EnumConfig& config,
                        uint64_t budget = 1'000'000);

} // namespace hecate::baselines
