#pragma once

/**
 * @file
 * Grafter baseline (Sakka et al., PLDI 2019), reimplemented from its
 * published algorithm for the Table 2 / Fig. 11 / Fig. 16 comparisons.
 *
 * Grafter takes a set of tree-traversal *passes* (here: the pass tags
 * on rule blocks) and fuses adjacent passes whenever its dependence
 * analysis proves the fused traversal preserves all read-write
 * dependencies, producing a deterministic sequence of fused
 * traversals. Where the original uses access automata products as the
 * decision procedure, we decide fusability with an exhaustive
 * dependence check over all tree shapes up to depth k — the same
 * verdicts on these benchmarks, with analysis cost that grows with
 * rule count and shape count just as the automata product does (see
 * DESIGN.md, substitution table).
 *
 * Unlike Hecate, Grafter (a) always fuses when legal — it cannot
 * trade fusion for parallelism, and (b) only supports linked-list
 * (scalar-child) traversals — grammars with collection children are
 * rejected, matching the limitation §6.2 describes.
 */

#include <optional>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "tree/enumerate.hpp"

namespace hecate::baselines {

/** Outcome of the Grafter scheduler. */
struct GrafterResult {
    bool ok = false;
    std::string error;
    /** Concrete traversals in execution order (one per fused group). */
    std::vector<ast::TraversalDecl> traversals;
    /** The pass names merged into each traversal. */
    std::vector<std::vector<std::string>> fusedPasses;
    uint64_t dependenceChecks = 0;
    size_t checkedTrees = 0;
    double seconds = 0.0;
};

/**
 * Run the Grafter-style scheduler: one post-order traversal per pass,
 * greedily fused left-to-right.
 */
GrafterResult grafterSchedule(const sem::Grammar& grammar,
                              sem::InterfaceId rootIface,
                              const tree::EnumConfig& config = {});

/**
 * Check a *sequence* of concrete traversals on one tree: traversal i
 * completes before traversal i+1 starts; every location written
 * exactly once across the sequence; every read happens after its
 * write. Returns a failure description or nothing.
 */
std::optional<std::string>
checkSequenceOn(const sem::Grammar& grammar,
                const std::vector<const sched::Skeleton*>& traversals,
                const tree::Tree& tree, bool requireComplete = true);

/**
 * Verify a traversal sequence on every shape up to the configured
 * bound; returns a failure description or nothing.
 */
std::optional<std::string>
verifySequence(const sem::Grammar& grammar,
               const std::vector<const sched::Skeleton*>& traversals,
               sem::InterfaceId rootIface, const tree::EnumConfig& config,
               size_t* checkedTrees = nullptr, bool requireComplete = true);

} // namespace hecate::baselines
