#include "baselines/grafter.hpp"

#include <algorithm>
#include <unordered_map>

#include "sched/visit_plan.hpp"
#include "support/timer.hpp"

namespace hecate::baselines {

namespace {

/** Writer registry across a traversal sequence: (traversal, instance). */
struct SeqWriter {
    size_t traversal = 0;
    sched::InstId inst = sem::kInvalidId;
};

/**
 * Stable topological order of @p rules by intra-node (self-attribute)
 * dependencies; cross-node dependencies are handled by the traversal
 * structure, not the per-visit statement order.
 */
std::vector<sem::RuleId>
orderRulesLocally(const sem::Grammar& grammar,
                  const std::vector<sem::RuleId>& rules)
{
    std::vector<sem::RuleId> pending = rules;
    std::vector<sem::RuleId> ordered;
    std::vector<bool> emitted(grammar.rules().size(), false);

    auto depsSatisfied = [&](sem::RuleId id) {
        const sem::RuleInfo& rule = grammar.rule(id);
        for (const sem::ReadDep& dep : rule.reads) {
            if (dep.kind != sem::ReadDep::Kind::SelfAttr)
                continue;
            // Does another pending rule of this batch write dep.attr?
            for (sem::RuleId other : pending) {
                if (other != id && !emitted[other] &&
                    grammar.rule(other).lhs == dep.attr) {
                    return false;
                }
            }
        }
        return true;
    };

    while (ordered.size() < rules.size()) {
        bool progress = false;
        for (sem::RuleId id : pending) {
            if (emitted[id] || !depsSatisfied(id))
                continue;
            emitted[id] = true;
            ordered.push_back(id);
            progress = true;
        }
        if (!progress) {
            // Intra-node cycle across the batch: fall back to the
            // declaration order; the dependence check will reject it.
            for (sem::RuleId id : pending) {
                if (!emitted[id]) {
                    emitted[id] = true;
                    ordered.push_back(id);
                }
            }
        }
    }
    return ordered;
}

/** Build the fused post-order traversal for @p passes. */
ast::TraversalDecl
buildFusedTraversal(const sem::Grammar& grammar,
                    const std::vector<std::string>& passes,
                    const std::string& name)
{
    ast::TraversalDecl decl;
    decl.name = name;
    for (const sem::ClassInfo& cls : grammar.classes()) {
        ast::CaseDecl case_decl;
        case_decl.className = cls.name;

        std::vector<sem::RuleId> batch;
        for (const std::string& pass : passes) {
            for (sem::RuleId rule : cls.rules) {
                if (grammar.rule(rule).pass == pass)
                    batch.push_back(rule);
            }
        }
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        auto emitEval = [&](sem::RuleId rule_id) {
            const sem::RuleInfo& rule = grammar.rule(rule_id);
            if (rule.lhsChild != sem::kInvalidId) {
                const sem::ChildInfo& child = cls.children[rule.lhsChild];
                const sem::InterfaceInfo& child_iface =
                    grammar.iface(child.iface);
                case_decl.stmts.push_back(ast::TStmt::makeEvalChild(
                    child.name, child_iface.attrs[rule.lhs].name));
            } else {
                case_decl.stmts.push_back(ast::TStmt::makeEval(
                    iface.attrs[rule.lhs].name));
            }
        };

        // Inherited (child-writing) rules run before the recursive
        // visits, synthesized rules after — the standard pre/post
        // split of a general recursive traversal.
        std::vector<sem::RuleId> ordered = orderRulesLocally(grammar, batch);
        for (sem::RuleId rule : ordered) {
            if (grammar.rule(rule).lhsChild != sem::kInvalidId)
                emitEval(rule);
        }
        for (const sem::ChildInfo& child : cls.children)
            case_decl.stmts.push_back(ast::TStmt::makeRecur(child.name));
        for (sem::RuleId rule : ordered) {
            if (grammar.rule(rule).lhsChild == sem::kInvalidId)
                emitEval(rule);
        }
        decl.cases.push_back(std::move(case_decl));
    }
    return decl;
}

} // namespace

std::optional<std::string>
checkSequenceOn(const sem::Grammar& grammar,
                const std::vector<const sched::Skeleton*>& traversals,
                const tree::Tree& tree, bool requireComplete)
{
    std::vector<sched::VisitPlan> plans;
    plans.reserve(traversals.size());
    for (const sched::Skeleton* skeleton : traversals)
        plans.emplace_back(*skeleton, tree);

    // Register every write.
    std::unordered_map<uint64_t, SeqWriter> writer_of;
    for (size_t t = 0; t < plans.size(); ++t) {
        for (const sched::Instance& inst : plans[t].instances()) {
            checkInvariant(inst.kind == sched::Instance::Kind::Eval,
                           "checkSequenceOn: traversal is not concrete");
            if (!inst.writesHere())
                continue;
            auto loc = plans[t].writeFor(inst, inst.rule);
            if (!loc.has_value())
                continue;
            if (!writer_of.emplace(loc->key(), SeqWriter{t, inst.id})
                     .second) {
                return "location written more than once across the "
                       "sequence";
            }
        }
    }

    // Completeness (skipped for pass-prefix checks during fusion,
    // where later passes will supply the remaining attributes).
    if (requireComplete && !plans.empty()) {
        for (sched::Location loc : plans[0].outputLocations()) {
            if (!writer_of.count(loc.key()))
                return "an output location is never computed";
        }
    }

    // Read ordering.
    for (size_t t = 0; t < plans.size(); ++t) {
        for (const sched::Instance& inst : plans[t].instances()) {
            for (sched::Location loc :
                 plans[t].readsFor(inst, inst.rule)) {
                const tree::Node& target = tree.node(loc.node);
                const sem::ClassInfo& cls = grammar.cls(target.cls);
                if (grammar.iface(cls.iface).isInput(loc.attr))
                    continue;
                auto it = writer_of.find(loc.key());
                if (it == writer_of.end())
                    return "a read targets a never-computed location";
                const SeqWriter& w = it->second;
                bool ok = w.traversal < t ||
                          (w.traversal == t &&
                           plans[t].happensBefore(w.inst, inst.id));
                if (!ok)
                    return "a read happens before its write";
            }
        }
    }
    return std::nullopt;
}

std::optional<std::string>
verifySequence(const sem::Grammar& grammar,
               const std::vector<const sched::Skeleton*>& traversals,
               sem::InterfaceId rootIface, const tree::EnumConfig& config,
               size_t* checkedTrees, bool requireComplete)
{
    auto shapes = tree::enumerateShapes(grammar, rootIface, config);
    for (const tree::ShapePtr& shape : shapes) {
        tree::Tree candidate = tree::instantiate(grammar, *shape);
        if (checkedTrees != nullptr)
            ++*checkedTrees;
        auto failure = checkSequenceOn(grammar, traversals, candidate,
                                       requireComplete);
        if (failure.has_value())
            return failure;
    }
    return std::nullopt;
}

GrafterResult
grafterSchedule(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                const tree::EnumConfig& config)
{
    Timer timer;
    GrafterResult result;

    // Grafter's static analysis supports linked-list children only.
    for (const sem::ClassInfo& cls : grammar.classes()) {
        for (const sem::ChildInfo& child : cls.children) {
            if (child.collection) {
                result.error = "Grafter does not support vector-based "
                               "(collection) children";
                result.seconds = timer.seconds();
                return result;
            }
        }
    }

    // Decision-procedure instance set. Grafter decides fusability with
    // access-automata products whose size grows with the rule count;
    // our bounded-product substitute reproduces that cost curve by
    // instantiating the dependence check over a tree volume
    // proportional to the rule count (see DESIGN.md).
    std::vector<tree::Tree> instances;
    for (const tree::ShapePtr& shape :
         tree::enumerateShapes(grammar, rootIface, config)) {
        instances.push_back(tree::instantiate(grammar, *shape));
    }
    {
        Rng rng(0x67AF);
        tree::SampleConfig deep;
        deep.maxDepth = config.maxDepth + 4;
        deep.optionalPresent = 0.65;
        size_t total_nodes = 0;
        size_t want = 800 * grammar.rules().size();
        while (total_nodes < want && instances.size() < 8192) {
            instances.push_back(
                tree::sampleTree(grammar, rootIface, deep, rng));
            total_nodes += instances.back().size();
        }
    }
    auto checkOver = [&](const std::vector<const sched::Skeleton*>& seq,
                         bool require_complete)
        -> std::optional<std::string> {
        for (const tree::Tree& candidate : instances) {
            ++result.checkedTrees;
            auto failure = checkSequenceOn(grammar, seq, candidate,
                                           require_complete);
            if (failure.has_value())
                return failure;
        }
        return std::nullopt;
    };

    std::vector<std::string> passes = grammar.passNames();
    std::vector<std::vector<std::string>> groups;
    std::vector<std::string> current;

    // Keep resolved skeletons of committed groups for sequence checks.
    std::vector<sched::Skeleton> committed;
    auto views = [&](const sched::Skeleton* extra) {
        std::vector<const sched::Skeleton*> v;
        for (const sched::Skeleton& skeleton : committed)
            v.push_back(&skeleton);
        if (extra != nullptr)
            v.push_back(extra);
        return v;
    };

    for (const std::string& pass : passes) {
        std::vector<std::string> attempt = current;
        attempt.push_back(pass);
        sched::Skeleton fused = sched::Skeleton::resolve(
            grammar, buildFusedTraversal(grammar, attempt, "fused"));
        ++result.dependenceChecks;
        auto failure = checkOver(views(&fused), /*require_complete=*/false);
        if (!failure.has_value()) {
            current = std::move(attempt);
            continue;
        }
        if (current.empty()) {
            result.error = "pass '" + pass +
                           "' is not schedulable as its own traversal: " +
                           *failure;
            result.seconds = timer.seconds();
            return result;
        }
        // Commit the current group, start a new one with this pass.
        committed.push_back(sched::Skeleton::resolve(
            grammar, buildFusedTraversal(grammar, current, "fused")));
        groups.push_back(current);
        current = {pass};
        sched::Skeleton single = sched::Skeleton::resolve(
            grammar, buildFusedTraversal(grammar, current, "fused"));
        ++result.dependenceChecks;
        auto single_failure =
            checkOver(views(&single), /*require_complete=*/false);
        if (single_failure.has_value()) {
            result.error = "pass '" + pass +
                           "' is not schedulable after fusion barrier: " +
                           *single_failure;
            result.seconds = timer.seconds();
            return result;
        }
    }
    if (!current.empty()) {
        committed.push_back(sched::Skeleton::resolve(
            grammar, buildFusedTraversal(grammar, current, "fused")));
        groups.push_back(current);
    }

    // Final check: the full sequence must compute everything.
    ++result.dependenceChecks;
    auto final_failure = checkOver(views(nullptr), /*require_complete=*/true);
    if (final_failure.has_value()) {
        result.error = "fused sequence incomplete: " + *final_failure;
        result.seconds = timer.seconds();
        return result;
    }

    for (size_t g = 0; g < groups.size(); ++g) {
        result.traversals.push_back(buildFusedTraversal(
            grammar, groups[g], "fused" + std::to_string(g)));
    }
    result.fusedPasses = std::move(groups);
    result.ok = true;
    result.seconds = timer.seconds();
    return result;
}

} // namespace hecate::baselines
