#pragma once

/**
 * @file
 * The schedule space of a synthesis problem: a Skeleton is a symbolic
 * traversal (L_t) resolved against a grammar — holes become slots with
 * explicit candidate-rule sets (the paper's `choose [none, a1..an]`),
 * fixed `eval` statements are bound to rules, and structural statements
 * are validated. A Schedule assigns at most one candidate to each slot
 * (the sigma relation of §4.2) and prints back as a concrete traversal
 * (Fig. 4(b)).
 */

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "sem/grammar.hpp"

namespace hecate::sched {

using SlotId = uint32_t;

/** Where a slot sits, which determines its candidate set. */
enum class SlotContext : uint8_t {
    TopLevel, ///< directly in a case: any rule of the class
    Iterate,  ///< inside `iterate c { }`: fold rules over c only
    Parallel, ///< inside a parallel region: no candidates (only `none`)
};

/** A resolved hole. */
struct SlotInfo {
    SlotId id = sem::kInvalidId;
    sem::ClassId cls = sem::kInvalidId;
    SlotContext context = SlotContext::TopLevel;
    sem::ChildId iterChild = sem::kInvalidId; ///< for Iterate
    std::vector<sem::RuleId> candidates;      ///< excludes implicit `none`
};

/**
 * A symbolic traversal resolved against a grammar. Owns its
 * TraversalDecl; keeps a pointer to the grammar (not owned).
 */
class Skeleton {
  public:
    /**
     * Resolve @p decl against @p grammar. Throws UserError when the
     * skeleton is ill-formed (unknown case class, recur on a collection,
     * iterate on a scalar, eval inside parallel, duplicate eval, ...).
     * Every grammar class must have exactly one case.
     */
    static Skeleton resolve(const sem::Grammar& grammar,
                            ast::TraversalDecl decl);

    Skeleton(Skeleton&&) = default;
    Skeleton& operator=(Skeleton&&) = default;
    Skeleton(const Skeleton&) = delete;
    Skeleton& operator=(const Skeleton&) = delete;

    const sem::Grammar& grammar() const { return *grammar_; }
    const ast::TraversalDecl& decl() const { return decl_; }

    const std::vector<SlotInfo>& slots() const { return slots_; }
    size_t slotCount() const { return slots_.size(); }
    const SlotInfo& slot(SlotId id) const { return slots_[id]; }

    /** The case body for class @p cls. */
    const ast::CaseDecl& caseFor(sem::ClassId cls) const;

    /** Slot id of a hole statement. */
    SlotId slotOf(const ast::TStmt* stmt) const;

    /** Rule bound to an eval statement (within case of class @p cls). */
    sem::RuleId evalRule(const ast::TStmt* stmt) const;

    /** Rules of class @p cls already fixed by eval statements. */
    const std::vector<sem::RuleId>& fixedRules(sem::ClassId cls) const
    {
        return fixedRules_[cls];
    }

  private:
    Skeleton() = default;

    void resolveCase(const ast::CaseDecl& caseDecl, sem::ClassId cls);
    void resolveStmt(const ast::TStmt& stmt, sem::ClassId cls,
                     SlotContext context, sem::ChildId iterChild,
                     bool insideBlock);

    const sem::Grammar* grammar_ = nullptr;
    ast::TraversalDecl decl_;
    std::vector<SlotInfo> slots_;
    std::vector<const ast::CaseDecl*> caseForClass_; ///< by ClassId
    std::unordered_map<const ast::TStmt*, SlotId> slotByStmt_;
    std::unordered_map<const ast::TStmt*, sem::RuleId> ruleByEval_;
    std::vector<std::vector<sem::RuleId>> fixedRules_; ///< by ClassId
};

/**
 * A (possibly partial) assignment of candidate rules to slots — the
 * output of synthesis.
 */
struct Schedule {
    std::vector<std::optional<sem::RuleId>> bySlot;

    bool operator==(const Schedule&) const = default;

    /**
     * Serialize to a compact single-line text form
     * ("schedv1 <n> <rule|-> ..."). Rule ids are grammar-relative, so
     * the bytes are only meaningful next to the grammar + skeleton the
     * schedule was synthesized for; the service layer's portable
     * encoding (service/schedule_cache) layers canonical rule names on
     * top of this for cross-request reuse.
     */
    std::string serialize() const;

    /** Inverse of serialize(); empty optional on malformed input. */
    static std::optional<Schedule> deserialize(std::string_view text);

    /**
     * Render the skeleton with every hole replaced by `eval` of its
     * assigned rule (empty holes disappear), i.e. Fig. 4(b).
     */
    ast::TraversalDecl toConcreteTraversal(const Skeleton& skeleton) const;

    /** Rules assigned anywhere in the schedule. */
    std::vector<sem::RuleId> assignedRules() const;

    /**
     * True when every rule of every class is scheduled exactly once
     * (by a slot or a fixed eval) — the paper's rule constraint.
     */
    bool coversAllRules(const Skeleton& skeleton) const;
};

} // namespace hecate::sched
