#pragma once

/**
 * @file
 * Memoized VisitPlan construction, the third leg of the CEGIS hot-path
 * optimization (with incremental ILP encoding and parallel
 * verification).
 *
 * Schedule checking and symbolic encoding are purely structural: a
 * VisitPlan depends only on the skeleton and the tree's *shape* (class
 * layout + child presence), never on attribute values. The CEGIS loop
 * therefore rebuilds the identical plan many times — once per
 * enumerated shape per verification round, and again when a
 * counterexample re-enters the synthesizer as an example. PlanCache
 * keys plans by `Tree::shapeString()` (an injective structural
 * fingerprint) and hands out shared immutable entries, so each (skeleton,
 * shape) pair is expanded exactly once per synthesis run.
 */

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sched/visit_plan.hpp"

namespace hecate::sched {

/**
 * A tree and the plan expanded over it, bundled so the plan's internal
 * tree pointer stays valid for the entry's whole lifetime. Immutable
 * and pinned (non-movable): always held through shared_ptr.
 */
class CachedPlan {
  public:
    CachedPlan(const Skeleton& skeleton, tree::Tree tree)
        : tree_(std::move(tree)), plan_(skeleton, tree_)
    {
    }

    CachedPlan(const CachedPlan&) = delete;
    CachedPlan& operator=(const CachedPlan&) = delete;

    const tree::Tree& tree() const { return tree_; }
    const VisitPlan& plan() const { return plan_; }

  private:
    tree::Tree tree_;
    VisitPlan plan_;
};

/** Thread-safe per-skeleton cache of shape -> expanded plan. */
class PlanCache {
  public:
    explicit PlanCache(const Skeleton& skeleton) : skeleton_(&skeleton) {}

    PlanCache(const PlanCache&) = delete;
    PlanCache& operator=(const PlanCache&) = delete;

    /**
     * Shared plan for any tree structurally identical to @p tree; the
     * plan is built (and @p tree captured) on first sight of the shape.
     */
    std::shared_ptr<const CachedPlan> lookup(tree::Tree tree);

    const Skeleton& skeleton() const { return *skeleton_; }

    size_t hits() const { return hits_.load(std::memory_order_relaxed); }
    size_t misses() const { return misses_.load(std::memory_order_relaxed); }
    size_t size() const;

  private:
    const Skeleton* skeleton_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const CachedPlan>>
        byShape_;
    std::atomic<size_t> hits_{0};
    std::atomic<size_t> misses_{0};
};

} // namespace hecate::sched
