#include "sched/plan_cache.hpp"

namespace hecate::sched {

std::shared_ptr<const CachedPlan>
PlanCache::lookup(tree::Tree tree)
{
    std::string key = tree.shapeString();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byShape_.find(key);
    if (it != byShape_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    auto entry = std::make_shared<const CachedPlan>(*skeleton_,
                                                    std::move(tree));
    byShape_.emplace(std::move(key), entry);
    return entry;
}

size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return byShape_.size();
}

} // namespace hecate::sched
