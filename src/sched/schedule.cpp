#include "sched/schedule.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace hecate::sched {

Skeleton
Skeleton::resolve(const sem::Grammar& grammar, ast::TraversalDecl decl)
{
    Skeleton skeleton;
    skeleton.grammar_ = &grammar;
    skeleton.decl_ = std::move(decl);
    skeleton.caseForClass_.assign(grammar.classes().size(), nullptr);
    skeleton.fixedRules_.resize(grammar.classes().size());

    for (const ast::CaseDecl& case_decl : skeleton.decl_.cases) {
        sem::ClassId cls = grammar.findClass(case_decl.className);
        if (cls == sem::kInvalidId) {
            userError("case for unknown class '" + case_decl.className + "'",
                      case_decl.loc);
        }
        if (skeleton.caseForClass_[cls] != nullptr) {
            userError("duplicate case for class '" + case_decl.className +
                          "'",
                      case_decl.loc);
        }
        skeleton.caseForClass_[cls] = &case_decl;
        skeleton.resolveCase(case_decl, cls);
    }
    for (const sem::ClassInfo& cls_info : grammar.classes()) {
        if (skeleton.caseForClass_[cls_info.id] == nullptr) {
            userError("traversal '" + skeleton.decl_.name +
                      "' has no case for class '" + cls_info.name + "'");
        }
    }
    // Rules already fixed by eval statements are not candidates for holes
    // of the same class (they would be scheduled twice).
    for (SlotInfo& slot : skeleton.slots_) {
        const auto& fixed = skeleton.fixedRules_[slot.cls];
        std::erase_if(slot.candidates, [&](sem::RuleId rule) {
            return std::find(fixed.begin(), fixed.end(), rule) != fixed.end();
        });
    }
    return skeleton;
}

void
Skeleton::resolveCase(const ast::CaseDecl& caseDecl, sem::ClassId cls)
{
    for (const auto& stmt : caseDecl.stmts) {
        resolveStmt(*stmt, cls, SlotContext::TopLevel, sem::kInvalidId,
                    /*insideBlock=*/false);
    }
}

void
Skeleton::resolveStmt(const ast::TStmt& stmt, sem::ClassId cls,
                      SlotContext context, sem::ChildId iterChild,
                      bool insideBlock)
{
    const sem::Grammar& grammar = *grammar_;
    const sem::ClassInfo& cls_info = grammar.cls(cls);

    switch (stmt.kind) {
      case ast::TStmtKind::Hole: {
        SlotInfo slot;
        slot.id = static_cast<SlotId>(slots_.size());
        slot.cls = cls;
        slot.context = context;
        slot.iterChild = iterChild;
        // Candidate sets per §3.2 and §6.2: top-level slots may hold any
        // rule of the class; slots inside `iterate c` may hold only fold
        // rules accumulating over c; slots inside parallel regions hold
        // nothing (assigning a self-write there would race).
        if (context == SlotContext::TopLevel) {
            slot.candidates = cls_info.rules;
        } else if (context == SlotContext::Iterate) {
            for (sem::RuleId rule : cls_info.rules) {
                const sem::RuleInfo& info = grammar.rule(rule);
                if (info.isFold && info.foldChild == iterChild)
                    slot.candidates.push_back(rule);
            }
        }
        slotByStmt_.emplace(&stmt, slot.id);
        slots_.push_back(std::move(slot));
        return;
      }
      case ast::TStmtKind::Recur: {
        auto it = cls_info.childByName.find(stmt.child);
        if (it == cls_info.childByName.end()) {
            userError("recur on unknown child '" + stmt.child + "'",
                      stmt.loc);
        }
        const sem::ChildInfo& child = cls_info.children[it->second];
        bool in_collection_block =
            (context == SlotContext::Iterate ||
             context == SlotContext::Parallel) &&
            iterChild != sem::kInvalidId;
        if (in_collection_block) {
            // Inside `iterate c { }` / `parallel c { }` the only legal
            // recur target is the iterated collection itself (a scalar
            // recur would visit that child once per element).
            if (!child.collection || it->second != iterChild) {
                userError("recur inside a collection block must target "
                          "the iterated collection",
                          stmt.loc);
            }
        } else if (child.collection) {
            userError("recur on collection '" + stmt.child +
                          "' outside iterate/parallel",
                      stmt.loc);
        }
        return;
      }
      case ast::TStmtKind::Eval: {
        if (context == SlotContext::Parallel) {
            userError("eval inside parallel region would race on self "
                      "attributes",
                      stmt.loc);
        }
        sem::RuleId rule = sem::kInvalidId;
        if (stmt.evalBase.empty()) {
            rule = grammar.findRule(cls, stmt.evalAttr);
        } else {
            auto child_it = cls_info.childByName.find(stmt.evalBase);
            if (child_it == cls_info.childByName.end()) {
                userError("eval through unknown child '" + stmt.evalBase +
                              "'",
                          stmt.loc);
            }
            const sem::InterfaceInfo& child_iface = grammar.iface(
                cls_info.children[child_it->second].iface);
            auto attr_it = child_iface.attrByName.find(stmt.evalAttr);
            if (attr_it != child_iface.attrByName.end()) {
                for (sem::RuleId candidate : cls_info.rules) {
                    const sem::RuleInfo& info = grammar.rule(candidate);
                    if (info.lhsChild == child_it->second &&
                        info.lhs == attr_it->second) {
                        rule = candidate;
                    }
                }
            }
        }
        if (rule == sem::kInvalidId) {
            userError("eval of unknown attribute '" + stmt.evalAttr +
                          "' on class '" + cls_info.name + "'",
                      stmt.loc);
        }
        const sem::RuleInfo& info = grammar.rule(rule);
        if (context == SlotContext::Iterate &&
            (!info.isFold || info.foldChild != iterChild)) {
            userError("only folds over the iterated collection may be "
                      "evaluated inside iterate",
                      stmt.loc);
        }
        auto& fixed = fixedRules_[cls];
        if (std::find(fixed.begin(), fixed.end(), rule) != fixed.end()) {
            userError("attribute '" + stmt.evalAttr +
                          "' evaluated more than once",
                      stmt.loc);
        }
        fixed.push_back(rule);
        ruleByEval_.emplace(&stmt, rule);
        return;
      }
      case ast::TStmtKind::Iterate: {
        if (insideBlock)
            userError("nested iterate/parallel blocks are not supported",
                      stmt.loc);
        auto it = cls_info.childByName.find(stmt.child);
        if (it == cls_info.childByName.end() ||
            !cls_info.children[it->second].collection) {
            userError("iterate requires a collection child", stmt.loc);
        }
        for (const auto& body_stmt : stmt.body) {
            resolveStmt(*body_stmt, cls, SlotContext::Iterate, it->second,
                        /*insideBlock=*/true);
        }
        return;
      }
      case ast::TStmtKind::Parallel: {
        if (insideBlock)
            userError("nested iterate/parallel blocks are not supported",
                      stmt.loc);
        sem::ChildId coll = sem::kInvalidId;
        if (!stmt.child.empty()) {
            auto it = cls_info.childByName.find(stmt.child);
            if (it == cls_info.childByName.end() ||
                !cls_info.children[it->second].collection) {
                userError("parallel over a non-collection child", stmt.loc);
            }
            coll = it->second;
        }
        for (const auto& body_stmt : stmt.body) {
            resolveStmt(*body_stmt, cls, SlotContext::Parallel, coll,
                        /*insideBlock=*/true);
        }
        return;
      }
    }
}

const ast::CaseDecl&
Skeleton::caseFor(sem::ClassId cls) const
{
    const ast::CaseDecl* found = caseForClass_[cls];
    checkInvariant(found != nullptr, "caseFor: class without case");
    return *found;
}

SlotId
Skeleton::slotOf(const ast::TStmt* stmt) const
{
    auto it = slotByStmt_.find(stmt);
    checkInvariant(it != slotByStmt_.end(), "slotOf: not a hole");
    return it->second;
}

sem::RuleId
Skeleton::evalRule(const ast::TStmt* stmt) const
{
    auto it = ruleByEval_.find(stmt);
    checkInvariant(it != ruleByEval_.end(), "evalRule: not an eval");
    return it->second;
}

namespace {

/** Rebuild a statement list replacing holes per @p schedule. */
std::vector<ast::TStmtPtr>
concretizeStmts(const std::vector<ast::TStmtPtr>& stmts,
                const Skeleton& skeleton, const Schedule& schedule)
{
    std::vector<ast::TStmtPtr> out;
    for (const auto& stmt : stmts) {
        switch (stmt->kind) {
          case ast::TStmtKind::Hole: {
            SlotId slot = skeleton.slotOf(stmt.get());
            const auto& assignment = schedule.bySlot[slot];
            if (assignment.has_value()) {
                const sem::Grammar& grammar = skeleton.grammar();
                const sem::RuleInfo& rule = grammar.rule(*assignment);
                const sem::ClassInfo& cls = grammar.cls(rule.cls);
                if (rule.lhsChild != sem::kInvalidId) {
                    const sem::ChildInfo& child =
                        cls.children[rule.lhsChild];
                    const sem::InterfaceInfo& child_iface =
                        grammar.iface(child.iface);
                    out.push_back(ast::TStmt::makeEvalChild(
                        child.name, child_iface.attrs[rule.lhs].name,
                        stmt->loc));
                } else {
                    const sem::InterfaceInfo& iface =
                        grammar.iface(cls.iface);
                    out.push_back(ast::TStmt::makeEval(
                        iface.attrs[rule.lhs].name, stmt->loc));
                }
            }
            break;
          }
          case ast::TStmtKind::Iterate:
          case ast::TStmtKind::Parallel: {
            auto block = stmt->clone();
            block->body = concretizeStmts(stmt->body, skeleton, schedule);
            out.push_back(std::move(block));
            break;
          }
          default:
            out.push_back(stmt->clone());
        }
    }
    return out;
}

} // namespace

ast::TraversalDecl
Schedule::toConcreteTraversal(const Skeleton& skeleton) const
{
    ast::TraversalDecl out;
    out.name = skeleton.decl().name;
    out.loc = skeleton.decl().loc;
    for (const ast::CaseDecl& case_decl : skeleton.decl().cases) {
        ast::CaseDecl concrete;
        concrete.className = case_decl.className;
        concrete.loc = case_decl.loc;
        concrete.stmts = concretizeStmts(case_decl.stmts, skeleton, *this);
        out.cases.push_back(std::move(concrete));
    }
    return out;
}

std::string
Schedule::serialize() const
{
    std::string out = "schedv1 " + std::to_string(bySlot.size());
    for (const auto& assignment : bySlot) {
        out += ' ';
        out += assignment.has_value() ? std::to_string(*assignment) : "-";
    }
    return out;
}

std::optional<Schedule>
Schedule::deserialize(std::string_view text)
{
    std::istringstream in{std::string(text)};
    std::string magic;
    size_t count = 0;
    if (!(in >> magic >> count) || magic != "schedv1")
        return std::nullopt;

    Schedule schedule;
    schedule.bySlot.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::string token;
        if (!(in >> token))
            return std::nullopt;
        if (token == "-") {
            schedule.bySlot.emplace_back(std::nullopt);
        } else {
            char* end = nullptr;
            unsigned long value = std::strtoul(token.c_str(), &end, 10);
            if (end == token.c_str() || *end != '\0')
                return std::nullopt;
            schedule.bySlot.emplace_back(
                static_cast<sem::RuleId>(value));
        }
    }
    std::string trailing;
    if (in >> trailing)
        return std::nullopt; // more tokens than declared
    return schedule;
}

std::vector<sem::RuleId>
Schedule::assignedRules() const
{
    std::vector<sem::RuleId> rules;
    for (const auto& assignment : bySlot) {
        if (assignment.has_value())
            rules.push_back(*assignment);
    }
    return rules;
}

bool
Schedule::coversAllRules(const Skeleton& skeleton) const
{
    const sem::Grammar& grammar = skeleton.grammar();
    std::vector<uint32_t> uses(grammar.rules().size(), 0);
    for (const auto& assignment : bySlot) {
        if (assignment.has_value())
            ++uses[*assignment];
    }
    for (const sem::ClassInfo& cls : grammar.classes()) {
        for (sem::RuleId fixed : skeleton.fixedRules(cls.id))
            ++uses[fixed];
    }
    return std::all_of(uses.begin(), uses.end(),
                       [](uint32_t n) { return n == 1; });
}

} // namespace hecate::sched
