#include "sched/visit_plan.hpp"

namespace hecate::sched {

/** Recursive plan builder maintaining the fork-join region stack. */
class VisitPlan::Builder {
  public:
    Builder(VisitPlan& plan) : plan_(plan) {}

    void run()
    {
        openRegion(VisitPlan::RegionKind::Seq);
        visitNode(plan_.tree_->root());
        path_.pop_back();
    }

  private:
    void openRegion(VisitPlan::RegionKind kind)
    {
        uint32_t id = static_cast<uint32_t>(plan_.regions_.size());
        if (!path_.empty()) {
            // The new region occupies the current branch of its parent.
            plan_.regions_[path_.back().first].items.push_back(
                {/*isRegion=*/true, id});
        }
        plan_.regions_.push_back({kind, {}});
        path_.emplace_back(id, 0);
    }

    /** Advance to the next branch of the innermost region. */
    void nextBranch() { ++path_.back().second; }

    Instance& addInstance(Instance::Kind kind, Instance::Phase phase,
                          tree::NodeId node)
    {
        Instance inst;
        inst.id = static_cast<InstId>(plan_.instances_.size());
        inst.kind = kind;
        inst.phase = phase;
        inst.node = node;
        inst.path = path_;
        plan_.regions_[path_.back().first].items.push_back(
            {/*isRegion=*/false, inst.id});
        plan_.instances_.push_back(std::move(inst));
        nextBranch();
        return plan_.instances_.back();
    }

    void visitNode(tree::NodeId node_id)
    {
        const tree::Node& node = plan_.tree_->node(node_id);
        const ast::CaseDecl& case_decl =
            plan_.skeleton_->caseFor(node.cls);
        // The node's statements run in their own sequential region,
        // occupying one branch of the enclosing region.
        openRegion(VisitPlan::RegionKind::Seq);
        for (const auto& stmt : case_decl.stmts)
            visitStmt(node_id, *stmt);
        path_.pop_back();
        nextBranch();
    }

    void visitStmt(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = plan_.tree_->node(node_id);
        const Skeleton& skeleton = *plan_.skeleton_;

        switch (stmt.kind) {
          case ast::TStmtKind::Hole: {
            SlotId slot = skeleton.slotOf(&stmt);
            if (skeleton.slot(slot).candidates.empty())
                return; // nothing can ever be scheduled here
            Instance& inst = addInstance(Instance::Kind::Slot,
                                         Instance::Phase::Whole, node_id);
            inst.slot = slot;
            return;
          }
          case ast::TStmtKind::Eval: {
            Instance& inst = addInstance(Instance::Kind::Eval,
                                         Instance::Phase::Whole, node_id);
            inst.rule = skeleton.evalRule(&stmt);
            return;
          }
          case ast::TStmtKind::Recur: {
            const sem::ClassInfo& cls =
                skeleton.grammar().cls(node.cls);
            sem::ChildId child = cls.childByName.at(stmt.child);
            tree::NodeId target = node.children[child].node;
            if (target != tree::kNoNode)
                visitNode(target);
            return;
          }
          case ast::TStmtKind::Iterate:
            expandIterate(node_id, stmt);
            return;
          case ast::TStmtKind::Parallel:
            expandParallel(node_id, stmt);
            return;
        }
    }

    void expandIterate(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = plan_.tree_->node(node_id);
        const Skeleton& skeleton = *plan_.skeleton_;
        const sem::ClassInfo& cls = skeleton.grammar().cls(node.cls);
        sem::ChildId coll = cls.childByName.at(stmt.child);
        const std::vector<tree::NodeId>& elems =
            node.children[coll].elems;

        // Per-element iterations, in order.
        for (tree::NodeId elem : elems) {
            openRegion(VisitPlan::RegionKind::Seq);
            for (const auto& body_stmt : stmt.body) {
                switch (body_stmt->kind) {
                  case ast::TStmtKind::Recur:
                    visitNode(elem);
                    break;
                  case ast::TStmtKind::Hole: {
                    SlotId slot = skeleton.slotOf(body_stmt.get());
                    if (skeleton.slot(slot).candidates.empty())
                        break;
                    Instance& inst =
                        addInstance(Instance::Kind::Slot,
                                    Instance::Phase::LoopIter, node_id);
                    inst.slot = slot;
                    inst.elem = elem;
                    break;
                  }
                  case ast::TStmtKind::Eval: {
                    Instance& inst =
                        addInstance(Instance::Kind::Eval,
                                    Instance::Phase::LoopIter, node_id);
                    inst.rule = skeleton.evalRule(body_stmt.get());
                    inst.elem = elem;
                    break;
                  }
                  default:
                    internalError("nested block inside iterate");
                }
            }
            path_.pop_back();
            nextBranch();
        }

        // Loop-end write instances, one per hole/eval in body order.
        for (const auto& body_stmt : stmt.body) {
            if (body_stmt->kind == ast::TStmtKind::Hole) {
                SlotId slot = skeleton.slotOf(body_stmt.get());
                if (skeleton.slot(slot).candidates.empty())
                    continue;
                Instance& inst = addInstance(Instance::Kind::Slot,
                                             Instance::Phase::LoopEnd,
                                             node_id);
                inst.slot = slot;
            } else if (body_stmt->kind == ast::TStmtKind::Eval) {
                Instance& inst = addInstance(Instance::Kind::Eval,
                                             Instance::Phase::LoopEnd,
                                             node_id);
                inst.rule = skeleton.evalRule(body_stmt.get());
            }
        }
    }

    void expandParallel(tree::NodeId node_id, const ast::TStmt& stmt)
    {
        const tree::Node& node = plan_.tree_->node(node_id);
        const Skeleton& skeleton = *plan_.skeleton_;
        const sem::ClassInfo& cls = skeleton.grammar().cls(node.cls);

        openRegion(VisitPlan::RegionKind::Par);
        if (!stmt.child.empty()) {
            // Collection form: one branch per element running the body.
            sem::ChildId coll = cls.childByName.at(stmt.child);
            for (tree::NodeId elem : node.children[coll].elems) {
                openRegion(VisitPlan::RegionKind::Seq);
                for (const auto& body_stmt : stmt.body) {
                    if (body_stmt->kind == ast::TStmtKind::Recur) {
                        visitNode(elem);
                    }
                    // Holes inside parallel have empty candidate sets
                    // (resolve guarantees) and evals are rejected, so
                    // nothing else materializes.
                }
                path_.pop_back();
                nextBranch();
            }
        } else {
            // Statement form: one branch per statement.
            for (const auto& body_stmt : stmt.body) {
                openRegion(VisitPlan::RegionKind::Seq);
                visitStmt(node_id, *body_stmt);
                path_.pop_back();
                nextBranch();
            }
        }
        path_.pop_back();
        nextBranch();
    }

    VisitPlan& plan_;
    std::vector<std::pair<uint32_t, uint32_t>> path_;
};

VisitPlan::VisitPlan(const Skeleton& skeleton, const tree::Tree& tree)
    : skeleton_(&skeleton), tree_(&tree)
{
    Builder(*this).run();

    // Index potential writers per location.
    const sem::Grammar& grammar = skeleton.grammar();
    (void)grammar;
    for (const Instance& inst : instances_) {
        if (!inst.writesHere())
            continue;
        if (inst.kind == Instance::Kind::Eval) {
            auto loc = writeFor(inst, inst.rule);
            if (loc.has_value()) {
                writers_[loc->key()].push_back(
                    {inst.id, inst.rule, /*fixed=*/true});
            }
        } else {
            for (sem::RuleId rule : skeleton.slot(inst.slot).candidates) {
                auto loc = writeFor(inst, rule);
                if (loc.has_value()) {
                    writers_[loc->key()].push_back(
                        {inst.id, rule, /*fixed=*/false});
                }
            }
        }
    }
}

const std::vector<Writer>&
VisitPlan::writersOf(Location loc) const
{
    auto it = writers_.find(loc.key());
    return it == writers_.end() ? noWriters_ : it->second;
}

bool
VisitPlan::happensBefore(InstId a, InstId b) const
{
    if (a == b)
        return false;
    const auto& pa = instances_[a].path;
    const auto& pb = instances_[b].path;
    size_t depth = std::min(pa.size(), pb.size());
    for (size_t i = 0; i < depth; ++i) {
        checkInvariant(pa[i].first == pb[i].first,
                       "happensBefore: region mismatch");
        if (pa[i].second != pb[i].second) {
            if (regions_[pa[i].first].kind == RegionKind::Par)
                return false; // sibling parallel branches: incomparable
            return pa[i].second < pb[i].second;
        }
    }
    internalError("happensBefore: one path is a prefix of another");
}

std::vector<Location>
VisitPlan::readsFor(const Instance& inst, sem::RuleId rule_id) const
{
    const sem::Grammar& grammar = skeleton_->grammar();
    const sem::RuleInfo& rule = grammar.rule(rule_id);
    const tree::Node& node = tree_->node(inst.node);

    std::vector<Location> reads;
    for (const sem::ReadDep& dep : rule.reads) {
        switch (dep.kind) {
          case sem::ReadDep::Kind::SelfAttr:
            if (inst.phase != Instance::Phase::LoopIter)
                reads.push_back({inst.node, dep.attr});
            break;
          case sem::ReadDep::Kind::ChildAttr: {
            if (inst.phase == Instance::Phase::LoopIter)
                break;
            tree::NodeId child = node.children[dep.child].node;
            if (child != tree::kNoNode)
                reads.push_back({child, dep.attr});
            break;
          }
          case sem::ReadDep::Kind::CollElem:
            if (inst.phase == Instance::Phase::LoopIter) {
                reads.push_back({inst.elem, dep.attr});
            } else if (inst.phase == Instance::Phase::Whole) {
                for (tree::NodeId elem : node.children[dep.child].elems)
                    reads.push_back({elem, dep.attr});
            }
            // LoopEnd: element reads already happened per iteration.
            break;
        }
    }
    return reads;
}

std::optional<Location>
VisitPlan::writeFor(const Instance& inst, sem::RuleId rule_id) const
{
    checkInvariant(inst.writesHere(), "writeFor: LoopIter does not write");
    const sem::RuleInfo& rule = skeleton_->grammar().rule(rule_id);
    if (rule.lhsChild == sem::kInvalidId)
        return Location{inst.node, rule.lhs};
    tree::NodeId target =
        tree_->node(inst.node).children[rule.lhsChild].node;
    if (target == tree::kNoNode)
        return std::nullopt; // absent optional child: vacuous write
    return Location{target, rule.lhs};
}

std::vector<Location>
VisitPlan::outputLocations() const
{
    const sem::Grammar& grammar = skeleton_->grammar();
    std::vector<Location> locs;
    for (const tree::Node& node : tree_->nodes()) {
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        for (sem::AttrId attr = 0; attr < iface.attrs.size(); ++attr) {
            if (!iface.isInput(attr))
                locs.push_back({node.id, attr});
        }
    }
    return locs;
}

} // namespace hecate::sched
