#pragma once

/**
 * @file
 * VisitPlan: the expansion of a skeleton over a concrete tree.
 *
 * Executing a traversal skeleton over a tree yields a sequence of slot
 * and eval *instances* — the paper's locations-in-time (Def. 3.2).
 * Sequential composition orders instances totally; `parallel` regions
 * order them fork-join, so the plan exposes a happens-before partial
 * order. Both symbolic encoders, the schedule verifier, and the value
 * interpreter consume the same plan, which is what makes "ILP encoding
 * == general encoding == simulation" a testable property.
 *
 * Fold rules placed inside `iterate c { }` are modeled with one
 * LoopIter instance per element (reading that element's attribute) and
 * a single LoopEnd instance after the loop (reading the fold's
 * non-element dependencies and performing the write). A fold placed in
 * a top-level slot is a single Whole instance reading every element.
 */

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sched/schedule.hpp"
#include "tree/tree.hpp"

namespace hecate::sched {

using InstId = uint32_t;

/** A runtime attribute cell: node x attribute (the paper's L domain). */
struct Location {
    tree::NodeId node = tree::kNoNode;
    sem::AttrId attr = sem::kInvalidId;

    bool operator==(const Location&) const = default;

    uint64_t key() const
    {
        return (static_cast<uint64_t>(node) << 32) | attr;
    }
};

/** One materialized slot/eval occurrence during the traversal. */
struct Instance {
    enum class Kind : uint8_t { Slot, Eval };
    /** Which part of an iterate expansion this instance is. */
    enum class Phase : uint8_t {
        Whole,    ///< ordinary instance: all reads + the write
        LoopIter, ///< per-element instance: element reads only
        LoopEnd,  ///< post-loop instance: non-element reads + the write
    };

    InstId id = sem::kInvalidId;
    Kind kind = Kind::Slot;
    Phase phase = Phase::Whole;
    SlotId slot = sem::kInvalidId;      ///< Kind::Slot
    sem::RuleId rule = sem::kInvalidId; ///< Kind::Eval
    tree::NodeId node = tree::kNoNode;  ///< owner of the case
    tree::NodeId elem = tree::kNoNode;  ///< LoopIter: current element

    /** Fork-join path: (regionId, branch) pairs from the root region. */
    std::vector<std::pair<uint32_t, uint32_t>> path;

    bool writesHere() const { return phase != Phase::LoopIter; }
};

/** A potential writer of a location. */
struct Writer {
    InstId inst = sem::kInvalidId;
    sem::RuleId rule = sem::kInvalidId; ///< rule whose write targets it
    bool fixed = false; ///< true for Eval instances (no sigma guard)
};

/** The expansion of a skeleton over one tree. */
class VisitPlan {
  public:
    /** Region kinds of the fork-join task tree. */
    enum class RegionKind : uint8_t { Seq, Par };

    /** An ordered child of a region: a sub-region or an instance. */
    struct TaskItem {
        bool isRegion = false;
        uint32_t index = 0; ///< region id or instance id
    };

    /** One region of the task tree. */
    struct RegionNode {
        RegionKind kind = RegionKind::Seq;
        std::vector<TaskItem> items;
    };

    VisitPlan(const Skeleton& skeleton, const tree::Tree& tree);

    const Skeleton& skeleton() const { return *skeleton_; }
    const tree::Tree& tree() const { return *tree_; }

    const std::vector<Instance>& instances() const { return instances_; }

    /** Potential writers of @p loc (slot candidates and fixed evals). */
    const std::vector<Writer>& writersOf(Location loc) const;

    /** Partial-order query: does @p a complete before @p b begins? */
    bool happensBefore(InstId a, InstId b) const;

    /**
     * Locations read by @p inst when it evaluates @p rule. For Eval
     * instances pass inst.rule. Reads through absent optional children
     * are skipped (no dependency).
     */
    std::vector<Location> readsFor(const Instance& inst,
                                   sem::RuleId rule) const;

    /**
     * Location written when @p inst evaluates @p rule; empty when the
     * rule targets an absent optional child (vacuous write).
     */
    std::optional<Location> writeFor(const Instance& inst,
                                     sem::RuleId rule) const;

    /** Every output-attribute location of the tree (must all be written). */
    std::vector<Location> outputLocations() const;

    /** Number of fork-join regions (for diagnostics). */
    size_t regionCount() const { return regions_.size(); }

    /** The fork-join task tree; region 0 is the root. */
    const std::vector<RegionNode>& regions() const { return regions_; }

  private:
    class Builder;

    const Skeleton* skeleton_;
    const tree::Tree* tree_;
    std::vector<Instance> instances_;
    std::vector<RegionNode> regions_;
    std::unordered_map<uint64_t, std::vector<Writer>> writers_;
    std::vector<Writer> noWriters_;
};

} // namespace hecate::sched
