#include "incr/reexecute.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.hpp"
#include "runtime/edit_state.hpp"
#include "runtime/eval_detail.hpp"
#include "runtime/steal.hpp"
#include "support/arith.hpp"
#include "support/diagnostics.hpp"

namespace hecate::incr {

using runtime::ArenaView;
using runtime::EditState;
using runtime::EvalKind;
using runtime::EvalSpec;
using runtime::Inst;
using runtime::kNone;
using runtime::NodeIdx;
using runtime::Op;
using runtime::Operand;
using runtime::Program;
using runtime::StealDeques;
using runtime::StealTask;
using runtime::SweepCase;
using runtime::XInst;

namespace {

/** State shared by every worker of one reexecute() call. */
struct IncrCtx {
    const Program* program = nullptr;
    const IncrPlan* plan = nullptr;
    ArenaView view;
    EditState* es = nullptr;
    ThreadPool* pool = nullptr;
    /** Stack-strategy region substrate; set while the walk is live. */
    StealDeques* deques = nullptr;
    /** Stack strategy: seed-ancestor activity mask (see below). */
    const uint8_t* spine = nullptr;
    size_t grain = 1;
    NodeIdx spawnPrefix = 0;

    // Hot dirt pointers, hoisted out of EditState's nested vectors.
    std::vector<uint8_t*> dirtCols; ///< per column, sized zeroRow + 1
    uint8_t* nodeDirt = nullptr;
    uint8_t* virgin = nullptr;
    const uint8_t* live = nullptr;
    const NodeIdx* parent = nullptr;
    const uint32_t* depth = nullptr;

    /** Serializes appends to the EditState undo lists. */
    std::mutex recordMutex;

    std::atomic<uint64_t> visits{0};
    std::atomic<uint64_t> checked{0};
    std::atomic<uint64_t> evaluated{0};
    std::atomic<uint64_t> dirtied{0};
    std::atomic<uint64_t> tasks{0};
    std::atomic<uint64_t> waves{0};

    bool isLive(NodeIdx n) const { return live == nullptr || live[n]; }
};

/**
 * Thrown by a region dispatch whose chunks were drained unrun because
 * another task already failed (StealDeques failure semantics): unwinds
 * this walk so the recorded first error surfaces at the join root.
 */
struct RegionAborted {};

/** Decrements a join counter however the owning task exits. */
class JoinGuard {
  public:
    explicit JoinGuard(std::atomic<uint32_t>* join) : join_(join) {}
    ~JoinGuard() { join_->fetch_sub(1, std::memory_order_release); }
    JoinGuard(const JoinGuard&) = delete;
    JoinGuard& operator=(const JoinGuard&) = delete;

  private:
    std::atomic<uint32_t>* join_;
};

/**
 * Worker-local dirty marking. The dirty *bytes* are written in place —
 * concurrent workers only ever touch disjoint cells (the same
 * disjointness argument the parallel executor rests on), so the bytes
 * race-free — but the EditState undo lists are shared, so flips are
 * buffered locally and appended under the ctx mutex on flush.
 */
class DirtRecorder {
  public:
    explicit DirtRecorder(IncrCtx& ctx) : ctx_(ctx) {}
    ~DirtRecorder() { flush(); }

    /** Marks (col, node) dirty; returns true on a fresh node flip. */
    void markCell(uint32_t col, NodeIdx node)
    {
        if (ctx_.dirtCols[col][node] == 0) {
            ctx_.dirtCols[col][node] = 1;
            cells_.push_back((static_cast<uint64_t>(col) << 32) | node);
        }
        if (ctx_.nodeDirt[node] == 0) {
            ctx_.nodeDirt[node] = 1;
            nodes_.push_back(node);
        }
    }

    void flush()
    {
        if (cells_.empty() && nodes_.empty())
            return;
        std::lock_guard<std::mutex> lock(ctx_.recordMutex);
        ctx_.es->dirtyCells.insert(ctx_.es->dirtyCells.end(), cells_.begin(),
                                   cells_.end());
        ctx_.es->dirtyNodes.insert(ctx_.es->dirtyNodes.end(), nodes_.begin(),
                                   nodes_.end());
        cells_.clear();
        nodes_.clear();
    }

  private:
    IncrCtx& ctx_;
    std::vector<uint64_t> cells_;
    std::vector<NodeIdx> nodes_;
};

/**
 * The per-application core both strategies share: decide whether one
 * EvalSpec instance at @p node must re-run (any read cell dirty, or
 * the target itself dirty/virgin — the latter covers constant-RHS
 * rules at appended nodes), recompute it if so, and propagate dirt
 * only on a value change (early cutoff). OnDirty is invoked with the
 * *owning node* of every freshly changed cell; the stack walk passes a
 * no-op (its descent filter reads the dirt bytes directly), the wave
 * walk enqueues readers.
 */
class SpecRunner {
  public:
    SpecRunner(IncrCtx& ctx, DirtRecorder& rec)
        : ctx_(ctx), rec_(rec), evals_(ctx.program->evals().data()),
          xcode_(ctx.program->exprPool().data()),
          reads_(ctx.plan->readData()), collReads_(ctx.plan->collData()),
          cols_(ctx.view.cols), zero_(ctx.view.zeroRow)
    {
        xstack_.resize(ctx.program->maxExprStack());
    }

    ~SpecRunner()
    {
        ctx_.checked += checked_;
        ctx_.evaluated += evaluated_;
        ctx_.dirtied += dirtied_;
    }

    bool cellDirty(uint32_t col, NodeIdx row) const
    {
        // Byte arrays are sized to the row capacity (zeroRow + 1), so
        // absent-child reads through the zero row need no branch: the
        // zero row's bytes are never set.
        return (ctx_.virgin[row] | ctx_.dirtCols[col][row]) != 0;
    }

    template <class OnDirty>
    void runSpec(uint32_t specIdx, NodeIdx node, const NodeIdx* kids,
                 OnDirty&& onDirty)
    {
        const EvalSpec& spec = evals_[specIdx];
        const NodeIdx target = kids[spec.targetSlot];
        if (target == zero_)
            return;
        ++checked_;
        bool need = cellDirty(spec.targetCol, target);
        if (!need) {
            const SpecReads& sr = ctx_.plan->reads(specIdx);
            const ReadRef* r = reads_ + sr.begin;
            for (uint32_t i = 0; i < sr.count && !need; ++i)
                need = cellDirty(r[i].col, kids[r[i].slot]);
            const CollReadRef* cr = collReads_ + sr.collBegin;
            for (uint32_t i = 0; i < sr.collCount && !need; ++i) {
                auto [beg, end] =
                    ctx_.view.collection(node, cr[i].collSlot);
                for (const NodeIdx* p = beg; p != end && !need; ++p)
                    need = cellDirty(cr[i].col, *p);
            }
        }
        if (!need)
            return;
        ++evaluated_;
        const int64_t v = specValue(spec, node, kids);
        int64_t& cell = cols_[spec.targetCol][target];
        if (cell == v)
            return; // early cutoff: dirt stops here
        cell = v;
        ++dirtied_;
        rec_.markCell(spec.targetCol, target);
        onDirty(target);
    }

    template <class OnDirty>
    void runSpecRange(uint32_t begin, uint32_t count, NodeIdx node,
                      const NodeIdx* kids, OnDirty&& onDirty)
    {
        for (uint32_t i = 0; i < count; ++i)
            runSpec(begin + i, node, kids, onDirty);
    }

  private:
    /** Mirrors Worker::evalRun's value computation, without the write. */
    int64_t specValue(const EvalSpec& spec, NodeIdx node,
                      const NodeIdx* kids)
    {
        switch (spec.kind) {
        case EvalKind::Bytecode:
            return runtime::detail::evalExpr(xcode_, spec.xbegin, cols_,
                                             ctx_.view, node, kids,
                                             xstack_.data());
        case EvalKind::Copy:
            return load(spec.a, kids);
        case EvalKind::Un:
            return wrapAbs(load(spec.a, kids)); // Un is always Abs
        case EvalKind::Bin:
            return runtime::detail::applyWrap(spec.fn1, load(spec.a, kids),
                                              load(spec.b, kids));
        case EvalKind::TriL:
            return runtime::detail::applyWrap(
                spec.fn2,
                runtime::detail::applyWrap(spec.fn1, load(spec.a, kids),
                                           load(spec.b, kids)),
                load(spec.c, kids));
        case EvalKind::TriR:
            return runtime::detail::applyWrap(
                spec.fn2, load(spec.a, kids),
                runtime::detail::applyWrap(spec.fn1, load(spec.b, kids),
                                           load(spec.c, kids)));
        case EvalKind::QuadL:
            return runtime::detail::applyWrap(
                spec.fn3,
                runtime::detail::applyWrap(
                    spec.fn2,
                    runtime::detail::applyWrap(spec.fn1,
                                               load(spec.a, kids),
                                               load(spec.b, kids)),
                    load(spec.c, kids)),
                load(spec.d, kids));
        case EvalKind::QuadB:
            return runtime::detail::applyWrap(
                spec.fn3,
                runtime::detail::applyWrap(spec.fn1, load(spec.a, kids),
                                           load(spec.b, kids)),
                runtime::detail::applyWrap(spec.fn2, load(spec.c, kids),
                                           load(spec.d, kids)));
        case EvalKind::CmpSel:
            return runtime::detail::applyWrap(spec.fn1,
                                              load(spec.a, kids),
                                              load(spec.b, kids)) != 0
                       ? load(spec.c, kids)
                       : load(spec.d, kids);
        }
        internalError("incr: bad eval kind");
    }

    int64_t load(const Operand& op, const NodeIdx* kids) const
    {
        if (op.slot == Operand::kConst)
            return op.imm;
        return cols_[op.col][kids[op.slot]];
    }

    IncrCtx& ctx_;
    DirtRecorder& rec_;
    const EvalSpec* evals_;
    const XInst* xcode_;
    const ReadRef* reads_;
    const CollReadRef* collReads_;
    int64_t* const* cols_;
    const NodeIdx zero_;
    std::vector<int64_t> xstack_;
    uint64_t checked_ = 0;
    uint64_t evaluated_ = 0;
    uint64_t dirtied_ = 0;
};

/**
 * Stack strategy: replay the program's own traversal, but descend only
 * into *active* subtrees — spine nodes (edit seeds and their
 * ancestors), dirty nodes (an inherited write just changed one of
 * their cells, same thread, before the descent check), and virgin
 * nodes. Everything else is provably clean: dirt reaches a rule only
 * through self/child reads, the spine covers every ancestor of a seed,
 * and a parent's writes into a child precede the child's visit in the
 * verified schedule. The dispatch loop is a faithful copy of the
 * executor Worker's (tail elision, in-place descent, reverse pushes,
 * region forking) with the activity filter at every descent site and
 * the incremental run condition at every eval.
 */
class StackWorker {
  public:
    StackWorker(IncrCtx& ctx, const uint8_t* spine, uint32_t slot = 0)
        : ctx_(ctx), slot_(slot), spine_(spine), rec_(ctx),
          specs_(ctx, rec_),
          code_(ctx.program->code().data()),
          entry_(ctx.program->entryData()), cls_(ctx.view.cls),
          scalarBase_(ctx.view.scalarBase), scalars_(ctx.view.scalars),
          zero_(ctx.view.zeroRow)
    {
    }

    ~StackWorker() { ctx_.visits += visits_; }

    bool active(NodeIdx n) const
    {
        return (spine_[n] | ctx_.nodeDirt[n] | ctx_.virgin[n]) != 0;
    }

    void run(NodeIdx root)
    {
        stack_.clear();
        pushFrame(root);
        auto noEnqueue = [](NodeIdx) {};
        while (!stack_.empty()) {
            Frame f = stack_.back();
            stack_.pop_back();
            const NodeIdx* kids = scalars_ + scalarBase_[f.node];
            bool live = true;
            while (live) {
                const Inst inst = code_[f.pc];
                ++f.pc;
                switch (inst.op) {
                case Op::Eval:
                    specs_.runSpecRange(inst.a, inst.b, f.node, kids,
                                        noEnqueue);
                    break;
                case Op::Recur: {
                    NodeIdx child = kids[inst.a];
                    if (child != zero_ && active(child)) {
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f);
                        f = {child, entry_[cls_[child]]};
                        kids = scalars_ + scalarBase_[child];
                        ++visits_;
                    }
                    break;
                }
                case Op::Iterate: {
                    auto [beg, end] = ctx_.view.collection(f.node, inst.a);
                    branches_.clear();
                    for (const NodeIdx* p = beg; p != end; ++p) {
                        if (active(*p))
                            branches_.push_back(*p);
                    }
                    if (!branches_.empty()) {
                        if (code_[f.pc].op != Op::Ret)
                            stack_.push_back(f);
                        for (auto it = branches_.rbegin();
                             it != branches_.rend(); ++it)
                            pushFrame(*it);
                        live = false;
                    }
                    break;
                }
                case Op::ParBegin: {
                    branches_.clear();
                    uint32_t pc = f.pc;
                    for (;; ++pc) {
                        const Inst b = code_[pc];
                        if (b.op == Op::ParRecur) {
                            NodeIdx t = kids[b.a];
                            if (t != zero_ && active(t))
                                branches_.push_back(t);
                        } else if (b.op == Op::ParColl) {
                            auto [beg, end] =
                                ctx_.view.collection(f.node, b.a);
                            for (const NodeIdx* p = beg; p != end; ++p) {
                                if (active(*p))
                                    branches_.push_back(*p);
                            }
                        } else {
                            break; // ParEnd
                        }
                    }
                    f.pc = pc + 1;
                    live = branches_.empty() || dispatchRegion(f);
                    break;
                }
                case Op::Ret:
                    live = false;
                    break;
                case Op::ParRecur:
                case Op::ParColl:
                case Op::ParEnd:
                    internalError("incr: region op outside a region");
                }
            }
        }
    }

  private:
    struct Frame {
        NodeIdx node;
        uint32_t pc;
    };

    void pushFrame(NodeIdx node)
    {
        stack_.push_back({node, entry_[cls_[node]]});
        ++visits_;
    }

    bool dispatchRegion(const Frame& f)
    {
        size_t grain = ctx_.grain;
        size_t chunkCount = (branches_.size() + grain - 1) / grain;
        if (chunkCount <= 1 && branches_.size() >= 2 &&
            ctx_.deques != nullptr && f.node < ctx_.spawnPrefix) {
            grain = 1;
            chunkCount = branches_.size();
        }
        if (ctx_.deques == nullptr || chunkCount <= 1) {
            if (code_[f.pc].op != Op::Ret)
                stack_.push_back(f);
            for (auto it = branches_.rbegin(); it != branches_.rend(); ++it)
                pushFrame(*it);
            return false;
        }
        // Same protocol as the executor's Worker: chunks go to this
        // worker's own deque, the join is driven from here, and a
        // failure elsewhere that drained our chunks aborts the walk.
        ctx_.tasks += chunkCount;
        std::atomic<uint32_t> join{static_cast<uint32_t>(chunkCount)};
        for (size_t chunk = chunkCount; chunk-- > 0;) {
            const size_t b = chunk * grain;
            const size_t e = std::min(branches_.size(), b + grain);
            ctx_.deques->push(
                slot_,
                StealTask{
                    reinterpret_cast<uint64_t>(branches_.data() + b),
                    static_cast<uint64_t>(e - b),
                    reinterpret_cast<uint64_t>(&join)});
        }
        ctx_.deques->drive(slot_, [&join] {
            return join.load(std::memory_order_acquire) == 0;
        });
        if (join.load(std::memory_order_acquire) != 0)
            throw RegionAborted{};
        return true;
    }

    IncrCtx& ctx_;
    const uint32_t slot_; ///< this worker's steal-deque slot
    const uint8_t* spine_;
    DirtRecorder rec_;
    SpecRunner specs_;
    const Inst* code_;
    const uint32_t* entry_;
    const sem::ClassId* cls_;
    const uint32_t* scalarBase_;
    const NodeIdx* scalars_;
    const NodeIdx zero_;
    std::vector<Frame> stack_;
    std::vector<NodeIdx> branches_;
    uint64_t visits_ = 0;
};

/**
 * Wave strategy (sweepable programs): the segmented sweep's
 * level-synchronous order, restricted to candidate nodes. Candidates
 * live in per-depth lists with a once-per-phase stamp; the pre pass
 * runs levels ascending, the post pass descending, and every dirtying
 * write enqueues exactly the nodes whose rules could read the changed
 * cell — the cell's own node and its parent (L_a). During the pre
 * pass a write can reach a *deeper* node (an inherited write into a
 * child), whose own pre wave is still ahead; during the post pass
 * every reachable reader sits at the current level (runs in spec
 * order on this very node) or above (a later, shallower wave), so
 * enqueueing the parent suffices. Wide waves chunk onto the pool with
 * the executor's per-level barrier argument; enqueues from parallel
 * chunks are deferred and replayed after the join.
 */
class WaveRunner {
  public:
    explicit WaveRunner(IncrCtx& ctx)
        : ctx_(ctx), rec_(ctx), specs_(ctx, rec_),
          sweeps_(ctx.program->sweepData()), cls_(ctx.view.cls),
          scalarBase_(ctx.view.scalarBase), scalars_(ctx.view.scalars)
    {
        const uint32_t levels = ctx_.es->maxDepth + 1;
        pre_.resize(levels);
        post_.resize(levels);
        preQ_.assign(ctx_.view.size, 0);
        postQ_.assign(ctx_.view.size, 0);
    }

    void enqueuePre(NodeIdx n)
    {
        if (!ctx_.isLive(n) || preQ_[n])
            return;
        preQ_[n] = 1;
        pre_[ctx_.depth[n]].push_back(n);
    }

    void enqueuePost(NodeIdx n)
    {
        if (!ctx_.isLive(n) || postQ_[n])
            return;
        postQ_[n] = 1;
        post_[ctx_.depth[n]].push_back(n);
    }

    void seed()
    {
        for (NodeIdx s : ctx_.es->seeds) {
            if (!ctx_.isLive(s))
                continue; // a later edit orphaned this region
            enqueuePre(s);
            enqueuePost(s);
            const NodeIdx p = ctx_.parent[s];
            if (p != kNone) {
                // Parent rules may read the seed's cells (inputs in
                // the pre pass, outputs in the post pass).
                enqueuePre(p);
                enqueuePost(p);
            }
        }
        for (const auto& [b, e] : ctx_.es->virginRanges) {
            for (NodeIdx n = b; n < e; ++n) {
                if (!ctx_.isLive(n))
                    continue;
                enqueuePre(n);
                enqueuePost(n);
            }
        }
    }

    void run()
    {
        // One steal-deque instance serves every wave of the run; the
        // per-wave members below are set before each wave's chunks are
        // pushed and stay fixed until its join drains (the per-wave
        // barrier the enqueue logic requires).
        std::unique_ptr<StealDeques> deques;
        if (ctx_.pool != nullptr && ctx_.pool->workerCount() != 0) {
            deques = std::make_unique<StealDeques>(
                ctx_.pool,
                [this](const StealTask& task, uint32_t) {
                    JoinGuard guard(&waveJoin_);
                    DirtRecorder rec(ctx_);
                    SpecRunner specs(ctx_, rec);
                    std::vector<NodeIdx>* out =
                        &(*waveDeferred_)[task.a];
                    for (uint64_t i = task.b; i < task.c; ++i)
                        runNode(specs, waveData_[i], wavePre_, out);
                });
            deques_ = deques.get();
        }
        seed();
        pre_phase_ = true;
        // Deeper lists may grow while a level runs (inherited writes
        // enqueue children); same-level growth is impossible — a pre
        // write targets self (already stamped) or a child one level
        // down — so swapping the wave out before running it is safe.
        for (uint32_t l = 0; l < pre_.size(); ++l) {
            curLevel_ = l;
            runWave(pre_[l], /*pre=*/true);
        }
        pre_phase_ = false;
        for (uint32_t l = static_cast<uint32_t>(post_.size()); l-- > 0;) {
            curLevel_ = l;
            runWave(post_[l], /*pre=*/false);
        }
        deques_ = nullptr;
    }

  private:
    /**
     * A cell of @p m changed. Pre pass: m's own rules may read it (its
     * pre wave is ahead only when m sits deeper than the current
     * level; its post wave is always ahead), and so may its parent's
     * (post pass). Post pass: only the parent's still-ahead post wave
     * can read it (a deeper node's waves are all done, and a write
     * into one would have been a schedule violation).
     */
    void onDirty(NodeIdx m)
    {
        if (pre_phase_) {
            if (ctx_.depth[m] > curLevel_)
                enqueuePre(m);
            enqueuePost(m);
        }
        const NodeIdx p = ctx_.parent[m];
        if (p != kNone)
            enqueuePost(p);
    }

    void runNode(SpecRunner& specs, NodeIdx n, bool pre,
                 std::vector<NodeIdx>* deferred)
    {
        const SweepCase& sc = sweeps_[cls_[n]];
        const uint32_t begin = pre ? sc.preBegin : sc.postBegin;
        const uint32_t count = pre ? sc.preCount : sc.postCount;
        if (count == 0)
            return;
        const NodeIdx* kids = scalars_ + scalarBase_[n];
        if (deferred != nullptr) {
            specs.runSpecRange(begin, count, n, kids,
                               [&](NodeIdx m) { deferred->push_back(m); });
        } else {
            specs.runSpecRange(begin, count, n, kids,
                               [&](NodeIdx m) { onDirty(m); });
        }
    }

    void runWave(std::vector<NodeIdx>& list, bool pre)
    {
        if (list.empty())
            return;
        std::vector<NodeIdx> wave;
        wave.swap(list);
        ++ctx_.waves;
        ctx_.visits += wave.size();
        const size_t grain = ctx_.grain;
        if (deques_ == nullptr || wave.size() < 2 * grain) {
            for (NodeIdx n : wave)
                runNode(specs_, n, pre, nullptr);
            return;
        }
        // Parallel chunks on the steal deques: same-wave nodes touch
        // pairwise-disjoint cells, so the spec runs race-free;
        // enqueues are deferred to per-chunk buffers and replayed
        // after the join (the queue vectors are not thread-safe).
        const size_t chunkCount = (wave.size() + grain - 1) / grain;
        std::vector<std::vector<NodeIdx>> deferred(chunkCount);
        waveData_ = wave.data();
        wavePre_ = pre;
        waveDeferred_ = &deferred;
        waveJoin_.store(static_cast<uint32_t>(chunkCount),
                        std::memory_order_relaxed);
        ctx_.tasks += chunkCount;
        for (size_t chunk = chunkCount; chunk-- > 0;) {
            const size_t b = chunk * grain;
            const size_t e = std::min(wave.size(), b + grain);
            deques_->push(0, StealTask{chunk, b, e});
        }
        deques_->drive(0, [this] {
            return waveJoin_.load(std::memory_order_acquire) == 0;
        });
        deques_->rethrowIfFailed();
        for (const auto& chunk : deferred) {
            for (NodeIdx m : chunk)
                onDirty(m);
        }
    }

    IncrCtx& ctx_;
    DirtRecorder rec_;
    SpecRunner specs_;
    const SweepCase* sweeps_;
    const sem::ClassId* cls_;
    const uint32_t* scalarBase_;
    const NodeIdx* scalars_;
    std::vector<std::vector<NodeIdx>> pre_;
    std::vector<std::vector<NodeIdx>> post_;
    std::vector<uint8_t> preQ_;
    std::vector<uint8_t> postQ_;
    bool pre_phase_ = true;
    uint32_t curLevel_ = 0;
    // Live-wave chunk state for the steal-deque runner; valid from the
    // pushes of one wave until its join drains.
    StealDeques* deques_ = nullptr;
    const NodeIdx* waveData_ = nullptr;
    bool wavePre_ = true;
    std::vector<std::vector<NodeIdx>>* waveDeferred_ = nullptr;
    std::atomic<uint32_t> waveJoin_{0};
};

IncrStats
runIncremental(const Program& program, const IncrPlan& plan,
               const ArenaView& view, EditState& es,
               const IncrOptions& options)
{
    IncrStats stats;
    stats.editsApplied = es.editsApplied;
    stats.seeds = es.seeds.size();
    stats.virginNodes = es.virginCount();

    IncrStrategy strategy = options.strategy;
    if (strategy == IncrStrategy::Auto) {
        // A narrow frontier (the common single-edit case) touches few
        // nodes per level, so wave setup (two stamp arrays over the
        // arena) dwarfs the walk; go level-synchronous only when the
        // frontier is wide enough to fill waves.
        const uint64_t frontier =
            es.seeds.size() + stats.virginNodes + es.dirtyNodes.size();
        strategy = program.sweepable() && frontier > 2048
                       ? IncrStrategy::Wave
                       : IncrStrategy::Stack;
    } else if (strategy == IncrStrategy::Wave && !program.sweepable()) {
        userError("incr: the wave strategy requires a sweepable "
                  "(sandwich-shaped) program; use the stack strategy");
    }

    obs::Telemetry& telemetry = options.telemetry != nullptr
                                    ? *options.telemetry
                                    : obs::Telemetry::nil();

    IncrCtx ctx;
    ctx.program = &program;
    ctx.plan = &plan;
    ctx.view = view;
    ctx.es = &es;
    ctx.pool = options.pool;
    ctx.grain = std::max<uint32_t>(
        1,
        std::min<uint32_t>(options.grain, std::max<uint32_t>(view.size, 1)));
    ctx.spawnPrefix = std::min<NodeIdx>(options.spawnPrefix, view.size);
    ctx.dirtCols.resize(es.dirty.size());
    for (size_t col = 0; col < es.dirty.size(); ++col)
        ctx.dirtCols[col] = es.dirty[col].data();
    ctx.nodeDirt = es.nodeDirt.data();
    ctx.virgin = es.virgin.data();
    ctx.live = es.structural ? es.live.data() : nullptr;
    ctx.parent = es.parent.data();
    ctx.depth = es.depth.data();

    if (strategy == IncrStrategy::Wave) {
        auto span = telemetry.span("incr.wave", "incr");
        stats.usedWave = true;
        WaveRunner runner(ctx);
        runner.run();
    } else {
        auto span = telemetry.span("incr.stack", "incr");
        // The spine: every seed and every ancestor of one. Parents of
        // dirty nodes must run (they read child cells), and the walk
        // can only reach them from a root, so the whole ancestor chain
        // is active.
        std::vector<uint8_t> spine(view.size, 0);
        for (NodeIdx s : ctx.es->seeds) {
            if (!ctx.isLive(s))
                continue;
            for (NodeIdx p = s; p != kNone && !spine[p]; p = ctx.parent[p])
                spine[p] = 1;
        }
        ctx.spine = spine.data();
        if (ctx.pool != nullptr && ctx.pool->workerCount() != 0) {
            // Same substrate as the executor's stack strategy: one
            // StealDeques instance, tasks decode {roots, count, join}
            // and run a fresh StackWorker bound to the executing slot.
            StealDeques deques(
                ctx.pool, [&ctx](const StealTask& task, uint32_t slot) {
                    const NodeIdx* beg =
                        reinterpret_cast<const NodeIdx*>(task.a);
                    const uint32_t count = static_cast<uint32_t>(task.b);
                    auto* join =
                        reinterpret_cast<std::atomic<uint32_t>*>(task.c);
                    JoinGuard guard(join);
                    StackWorker worker(ctx, ctx.spine, slot);
                    for (uint32_t i = 0; i < count; ++i)
                        worker.run(beg[i]);
                });
            ctx.deques = &deques;
            std::vector<NodeIdx> active;
            {
                StackWorker probe(ctx, ctx.spine);
                for (uint32_t r = 0; r < view.rootCount; ++r) {
                    const NodeIdx root = view.roots[r];
                    if (probe.active(root))
                        active.push_back(root);
                }
            }
            std::atomic<uint32_t> rootJoin{
                static_cast<uint32_t>(active.size())};
            ctx.tasks += active.size();
            for (size_t r = active.size(); r-- > 0;) {
                deques.push(
                    0, StealTask{
                           reinterpret_cast<uint64_t>(active.data() + r),
                           1, reinterpret_cast<uint64_t>(&rootJoin)});
            }
            deques.drive(0, [&rootJoin] {
                return rootJoin.load(std::memory_order_acquire) == 0;
            });
            ctx.deques = nullptr;
            deques.rethrowIfFailed();
        } else {
            StackWorker worker(ctx, spine.data());
            for (uint32_t r = 0; r < view.rootCount; ++r) {
                const NodeIdx root = view.roots[r];
                if (worker.active(root))
                    worker.run(root);
            }
        }
        ctx.spine = nullptr;
    }

    stats.nodesVisited = ctx.visits;
    stats.rulesChecked = ctx.checked;
    stats.rulesEvaluated = ctx.evaluated;
    stats.cellsDirtied = ctx.dirtied;
    stats.levelWaves = ctx.waves;
    stats.tasksSpawned = ctx.tasks;
    return stats;
}

} // namespace

IncrStats
reexecute(const Program& program, const IncrPlan& plan,
          runtime::TreeArena& arena, const IncrOptions& options)
{
    checkInvariant(&arena.grammar() == &program.grammar(),
                   "incr: program compiled for a different grammar");
    EditState* es = arena.edits();
    if (es == nullptr || !es->hasPendingDirt())
        return {};
    IncrStats stats =
        runIncremental(program, plan, arena.view(), *es, options);
    arena.clearDirt();
    return stats;
}

IncrStats
reexecute(const Program& program, const IncrPlan& plan,
          runtime::ForestArena& forest, const IncrOptions& options)
{
    runtime::TreeArena& flat = forest.flat();
    checkInvariant(&flat.grammar() == &program.grammar(),
                   "incr: program compiled for a different grammar");
    EditState* es = flat.edits();
    if (es == nullptr || !es->hasPendingDirt())
        return {};
    if (es->structural)
        userError("incr: structural edits on a packed forest are not "
                  "supported; edit the source tree and repack");
    IncrStats stats =
        runIncremental(program, plan, forest.view(), *es, options);
    flat.clearDirt();
    return stats;
}

} // namespace hecate::incr
