#pragma once

/**
 * @file
 * IncrPlan: the per-rule read sets the incremental invalidator needs,
 * extracted once from a compiled Program.
 *
 * The full executor never asks *what* a rule reads — it just runs the
 * superinstruction or bytecode. Incremental re-execution inverts the
 * question: a rule application must re-run iff one of its read cells
 * (or its own target cell, which covers virgin nodes that never held a
 * computed value) is dirty. Because L_a rules read only self and child
 * attributes, every read is expressible as (scalar-block row, column)
 * — row 0 is the node itself, row c + 1 its scalar child slot c — plus
 * (collection slot, column) pairs for folds. Both are recovered
 * directly from the compiled EvalSpecs: superinstruction operands name
 * their cells outright, and Bytecode specs are scanned over their
 * expression window (tracking the furthest jump target, so `if` arms
 * past an early Done are still covered — a conservative
 * over-approximation is safe, an under-approximation is not).
 */

#include <cstdint>
#include <vector>

#include "runtime/program.hpp"

namespace hecate::incr {

/** One scalar read: column @c col of scalar-block row @c slot. */
struct ReadRef {
    int32_t slot = 0;
    uint32_t col = 0;
};

/** One fold read: column @c col of every element of collection slot. */
struct CollReadRef {
    uint32_t collSlot = 0;
    uint32_t col = 0;
};

/** Read-set window of one EvalSpec (indices into the flat arrays). */
struct SpecReads {
    uint32_t begin = 0;
    uint32_t count = 0;
    uint32_t collBegin = 0;
    uint32_t collCount = 0;
};

/** Immutable per-program read-set table, indexed like Program::evals(). */
class IncrPlan {
  public:
    static IncrPlan build(const runtime::Program& program);

    const SpecReads& reads(uint32_t spec) const { return specs_[spec]; }
    const ReadRef* readData() const { return reads_.data(); }
    const CollReadRef* collData() const { return collReads_.data(); }

  private:
    std::vector<SpecReads> specs_;
    std::vector<ReadRef> reads_;
    std::vector<CollReadRef> collReads_;
};

} // namespace hecate::incr
