#include "incr/edit.hpp"

#include <algorithm>

#include "runtime/edit_state.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace hecate::incr {

using runtime::EditState;
using runtime::GenConfig;
using runtime::kNone;
using runtime::NodeIdx;
using runtime::TreeArena;

runtime::NodeIdx
applyEdit(TreeArena& arena, const Edit& edit)
{
    if (edit.kind == Edit::Kind::MutateInput) {
        arena.mutateInput(edit.node, edit.attr, edit.value);
        return edit.node;
    }

    const sem::Grammar& grammar = arena.grammar();
    const sem::InterfaceId iface =
        grammar.cls(arena.classOf(edit.node)).iface;
    GenConfig config;
    config.targetNodes = std::max(1u, edit.subtreeNodes);
    config.seed = edit.seed;
    // The parent edge may admit only some implementers of the child's
    // interface; generation picks freely among them, so retry derived
    // seeds until an admitted root class comes up.
    for (uint32_t attempt = 0;; ++attempt) {
        config.seed = edit.seed + 0x9e3779b97f4a7c15ull * attempt;
        TreeArena replacement = TreeArena::generate(grammar, iface, config);
        try {
            return arena.replaceSubtree(edit.node, replacement);
        } catch (const UserError&) {
            if (attempt >= 16)
                throw;
        }
    }
}

std::vector<Edit>
applyRandomEdits(TreeArena& arena, uint32_t count, uint32_t subtreeNodes,
                 uint64_t seed)
{
    const sem::Grammar& grammar = arena.grammar();
    Rng rng(splitmix64(seed));
    std::vector<Edit> edits;
    edits.reserve(count);

    for (uint32_t i = 0; i < count; ++i) {
        const bool wantSubtree = arena.size() >= 3 && rng.below(4) == 0;
        bool applied = false;
        for (uint32_t attempt = 0; attempt < 64 && !applied; ++attempt) {
            const NodeIdx node =
                static_cast<NodeIdx>(rng.below(arena.size()));
            if (!arena.isLive(node))
                continue;
            Edit edit;
            edit.node = node;
            if (wantSubtree) {
                // Roots cannot be replaced; anything else can (the
                // admitted-class retry lives in applyEdit).
                const EditState* es = arena.edits();
                const bool isRoot =
                    es ? es->parent[node] == kNone : node == 0;
                if (isRoot)
                    continue;
                edit.kind = Edit::Kind::ReplaceSubtree;
                edit.subtreeNodes = std::max(1u, subtreeNodes);
                edit.seed = rng.next();
            } else {
                const sem::ClassInfo& info =
                    grammar.cls(arena.classOf(node));
                const sem::InterfaceInfo& ifc = grammar.iface(info.iface);
                std::vector<sem::AttrId> inputs;
                for (sem::AttrId a = 0; a < ifc.attrs.size(); ++a) {
                    if (ifc.isInput(a))
                        inputs.push_back(a);
                }
                if (inputs.empty())
                    continue; // interface has no inputs; redraw the node
                edit.kind = Edit::Kind::MutateInput;
                edit.attr = inputs[rng.below(inputs.size())];
                edit.value = static_cast<int64_t>(rng.below(10007)) - 5003;
            }
            applyEdit(arena, edit);
            edits.push_back(edit);
            applied = true;
        }
    }
    return edits;
}

} // namespace hecate::incr
