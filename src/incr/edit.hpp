#pragma once

/**
 * @file
 * Edit: a serializable description of one tree mutation — the unit the
 * CLI edit-storm driver, the serve daemon's `edit` op, and the
 * randomized differential tests all share. Applying an Edit goes
 * through the TreeArena edit API (runtime/arena_edit.cpp), which does
 * the actual dirty marking; replacement subtrees are generated
 * deterministically from the edit's seed, so two arenas given the same
 * Edit sequence end up cell-identical.
 */

#include <cstdint>
#include <vector>

#include "runtime/arena.hpp"

namespace hecate::incr {

struct Edit {
    enum class Kind : uint8_t { MutateInput, ReplaceSubtree };

    Kind kind = Kind::MutateInput;
    runtime::NodeIdx node = 0;
    /** MutateInput: attribute id within the node's interface. */
    sem::AttrId attr = 0;
    /** MutateInput: the new value. */
    int64_t value = 0;
    /** ReplaceSubtree: generated replacement's node budget. */
    uint32_t subtreeNodes = 8;
    /** ReplaceSubtree: generation seed (deterministic replacements). */
    uint64_t seed = 1;
};

/**
 * Apply @p edit to @p arena. ReplaceSubtree edits generate the
 * replacement from the edit's seed (retrying derived seeds when the
 * parent edge restricts the admissible root classes) and return the
 * new subtree root; MutateInput edits return the mutated node.
 */
runtime::NodeIdx applyEdit(runtime::TreeArena& arena, const Edit& edit);

/**
 * Draw @p count random valid edits (mostly input mutations, ~1 in 4
 * subtree replacements of roughly @p subtreeNodes nodes) and apply
 * them to @p arena as they are drawn — each edit is validated against
 * the shape the previous ones produced. Deterministic in @p seed.
 * Returns the applied list so a differential copy (taken *before* the
 * call) can replay it via applyEdit.
 */
std::vector<Edit> applyRandomEdits(runtime::TreeArena& arena, uint32_t count,
                                   uint32_t subtreeNodes, uint64_t seed);

} // namespace hecate::incr
