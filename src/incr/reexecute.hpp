#pragma once

/**
 * @file
 * incr::reexecute — schedule-ordered partial re-execution after tree
 * edits.
 *
 * The full executor recomputes every attribute cell; after a handful
 * of edits, almost all of that work reproduces values that are already
 * correct. reexecute() re-runs rule applications *in the schedule's
 * own order* but only where dirt can reach, with value-change early
 * cutoff (a re-run whose result equals the stored value propagates no
 * further). Correctness rests on two facts: (1) re-running a subset of
 * the full schedule in schedule order, where the subset contains every
 * application with a dirty read (or a virgin/dirty target), reproduces
 * the full run's fixpoint by induction over the schedule's total
 * order; and (2) L_a locality — a rule reads only self and child cells
 * — bounds dirt propagation to the parent/child edges the two walk
 * strategies follow:
 *
 *  - Stack: descend from the roots along the spine (edit seeds plus
 *    their ancestors) and into any subtree whose root is marked dirty
 *    or virgin, replaying the program's traversal ops. `parallel`
 *    regions still fork onto the pool.
 *  - Wave: for sweepable programs, a segmented-sweep analogue — per
 *    depth level, pre candidates run in ascending waves and post
 *    candidates in descending waves, and every dirtying write enqueues
 *    exactly the nodes whose rules could read it (itself, its parent,
 *    and — during the pre pass — the written child). Wide waves chunk
 *    onto the pool with the same per-level barrier argument as the
 *    full segmented strategy.
 *
 * Both paths are validated differentially against full recompute on
 * every bundled grammar (tests/test_incr.cpp). Dirt is consumed: a
 * successful reexecute() clears the arena's pending edit state.
 */

#include <cstdint>

#include "incr/plan.hpp"
#include "runtime/executor.hpp"
#include "runtime/forest.hpp"

namespace hecate::obs {
class Telemetry;
}

namespace hecate::incr {

/** How reexecute() walks the dirty region. */
enum class IncrStrategy : uint8_t {
    Auto,  ///< Wave for sweepable programs with wide frontiers, else Stack
    Stack, ///< spine-guided traversal replay (any program)
    Wave,  ///< level-synchronous dirty waves (sweepable programs only)
};

/** Knobs; defaults mirror runtime::ExecOptions. */
struct IncrOptions {
    ThreadPool* pool = nullptr;
    uint32_t grain = 1024;
    uint32_t spawnPrefix = 1024;
    IncrStrategy strategy = IncrStrategy::Auto;
    obs::Telemetry* telemetry = nullptr;
};

/** Counters from one incremental re-execution. */
struct IncrStats {
    uint64_t editsApplied = 0;  ///< edits pending when the run started
    uint64_t seeds = 0;         ///< edit seed nodes
    uint64_t virginNodes = 0;   ///< appended (never-computed) nodes
    uint64_t nodesVisited = 0;  ///< nodes the dirty walk reached
    uint64_t rulesChecked = 0;  ///< rule applications whose reads were scanned
    uint64_t rulesEvaluated = 0; ///< rule applications actually re-run
    uint64_t cellsDirtied = 0;  ///< cells whose value changed during the run
    uint64_t levelWaves = 0;    ///< waves executed (Wave strategy)
    uint64_t tasksSpawned = 0;  ///< pool tasks (regions + wave chunks)
    bool usedWave = false;
};

/**
 * Re-evaluate @p arena's dirty region under @p program. The arena must
 * previously have been fully executed with the same program (outputs
 * at non-dirty cells are trusted). No-op when no edits are pending.
 * Throws UserError when options.strategy names Wave for a
 * non-sweepable program. Clears the arena's pending dirt on success.
 */
IncrStats reexecute(const runtime::Program& program, const IncrPlan& plan,
                    runtime::TreeArena& arena, const IncrOptions& options = {});

/**
 * Forest overload: input mutations only (structural edits would break
 * the packed tree blocks and are rejected). Per-tree isolation falls
 * out of the walk: dirt never crosses tree-block boundaries.
 */
IncrStats reexecute(const runtime::Program& program, const IncrPlan& plan,
                    runtime::ForestArena& forest,
                    const IncrOptions& options = {});

} // namespace hecate::incr
