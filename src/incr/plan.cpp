#include "incr/plan.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hecate::incr {

using runtime::EvalKind;
using runtime::EvalSpec;
using runtime::Operand;
using runtime::XInst;
using runtime::XOp;

namespace {

/** Collects one spec's reads with small-vector dedup. */
struct Collector {
    std::vector<ReadRef>& reads;
    std::vector<CollReadRef>& collReads;
    uint32_t begin;
    uint32_t collBegin;

    void scalar(int32_t slot, uint32_t col)
    {
        for (uint32_t i = begin; i < reads.size(); ++i) {
            if (reads[i].slot == slot && reads[i].col == col)
                return;
        }
        reads.push_back({slot, col});
    }

    void operand(const Operand& op)
    {
        if (op.slot != Operand::kConst)
            scalar(op.slot, op.col);
    }

    void coll(uint32_t collSlot, uint32_t col)
    {
        for (uint32_t i = collBegin; i < collReads.size(); ++i) {
            if (collReads[i].collSlot == collSlot &&
                collReads[i].col == col)
                return;
        }
        collReads.push_back({collSlot, col});
    }
};

} // namespace

IncrPlan
IncrPlan::build(const runtime::Program& program)
{
    IncrPlan plan;
    const std::vector<XInst>& xcode = program.exprPool();
    plan.specs_.reserve(program.evals().size());

    for (const EvalSpec& spec : program.evals()) {
        Collector c{plan.reads_, plan.collReads_,
                    static_cast<uint32_t>(plan.reads_.size()),
                    static_cast<uint32_t>(plan.collReads_.size())};
        switch (spec.kind) {
        case EvalKind::Copy:
        case EvalKind::Un:
            c.operand(spec.a);
            break;
        case EvalKind::Bin:
            c.operand(spec.a);
            c.operand(spec.b);
            break;
        case EvalKind::TriL:
        case EvalKind::TriR:
            c.operand(spec.a);
            c.operand(spec.b);
            c.operand(spec.c);
            break;
        case EvalKind::QuadL:
        case EvalKind::QuadB:
        case EvalKind::CmpSel:
            c.operand(spec.a);
            c.operand(spec.b);
            c.operand(spec.c);
            c.operand(spec.d);
            break;
        case EvalKind::Bytecode: {
            // Linear scan of the expression window. Jump targets are
            // absolute pool indices; an early Done (an `if` arm's
            // exit) must not stop the scan while instructions past
            // the furthest known target remain — those are the other
            // arms, whose reads count too.
            uint32_t pc = spec.xbegin;
            uint32_t maxTarget = pc;
            for (;; ++pc) {
                checkInvariant(pc < xcode.size(),
                               "IncrPlan: expression scan ran off the pool");
                const XInst& x = xcode[pc];
                switch (x.op) {
                case XOp::LoadSelf:
                    c.scalar(0, x.a);
                    break;
                case XOp::LoadChild:
                    c.scalar(static_cast<int32_t>(x.a), x.b);
                    break;
                case XOp::Fold:
                    c.coll(x.a, x.b);
                    break;
                case XOp::Jz:
                case XOp::Jmp:
                    maxTarget = std::max(maxTarget, x.a);
                    break;
                default:
                    break;
                }
                if (x.op == XOp::Done && pc >= maxTarget)
                    break;
            }
            break;
        }
        }
        SpecReads sr;
        sr.begin = c.begin;
        sr.count = static_cast<uint32_t>(plan.reads_.size()) - c.begin;
        sr.collBegin = c.collBegin;
        sr.collCount =
            static_cast<uint32_t>(plan.collReads_.size()) - c.collBegin;
        plan.specs_.push_back(sr);
    }
    return plan;
}

} // namespace hecate::incr
