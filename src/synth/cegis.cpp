#include "synth/cegis.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>

#include "sched/visit_plan.hpp"
#include "support/timer.hpp"
#include "symbolic/general_encoder.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/ilp_session.hpp"

namespace hecate::synth {

namespace {

/** Human-readable "Class.attr@node" for diagnostics. */
std::string
locName(const sched::VisitPlan& plan, sched::Location loc)
{
    const sem::Grammar& grammar = plan.skeleton().grammar();
    const tree::Node& node = plan.tree().node(loc.node);
    const sem::ClassInfo& cls = grammar.cls(node.cls);
    return cls.name + "." +
           grammar.iface(cls.iface).attrs[loc.attr].name + "@n" +
           std::to_string(loc.node);
}

/** Seed of the sampling Rng for random verification round @p round. */
uint64_t
roundSeed(uint64_t seed, uint32_t round)
{
    return splitmix64(splitmix64(seed) + round);
}

} // namespace

uint32_t
resolveVerifyThreads(uint32_t configured)
{
    if (configured != 0)
        return configured;
    if (const char* env = std::getenv("HECATE_VERIFY_THREADS")) {
        int parsed = std::atoi(env);
        if (parsed > 0)
            return static_cast<uint32_t>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::optional<std::string>
checkScheduleOnPlan(const sched::VisitPlan& plan,
                    const sched::Schedule& schedule)
{
    const sched::Skeleton& skeleton = plan.skeleton();
    const sem::Grammar& grammar = skeleton.grammar();
    const tree::Tree& tree = plan.tree();

    // Resolve the writer instance of every output location.
    std::unordered_map<uint64_t, sched::InstId> writer_of;
    for (sched::Location loc : plan.outputLocations()) {
        uint32_t count = 0;
        for (const sched::Writer& w : plan.writersOf(loc)) {
            const sched::Instance& wi = plan.instances()[w.inst];
            bool writes = w.fixed ||
                          (schedule.bySlot[wi.slot].has_value() &&
                           *schedule.bySlot[wi.slot] == w.rule);
            if (writes) {
                writer_of[loc.key()] = w.inst;
                ++count;
            }
        }
        if (count == 0) {
            return "location " + locName(plan, loc) + " is never computed";
        }
        if (count > 1) {
            return "location " + locName(plan, loc) +
                   " is computed more than once";
        }
    }

    // Check every read of every executing instance.
    for (const sched::Instance& inst : plan.instances()) {
        sem::RuleId rule;
        if (inst.kind == sched::Instance::Kind::Eval) {
            rule = inst.rule;
        } else {
            const auto& assignment = schedule.bySlot[inst.slot];
            if (!assignment.has_value())
                continue;
            rule = *assignment;
        }
        for (sched::Location loc : plan.readsFor(inst, rule)) {
            const tree::Node& target = tree.node(loc.node);
            const sem::ClassInfo& cls = grammar.cls(target.cls);
            if (grammar.iface(cls.iface).isInput(loc.attr))
                continue;
            auto it = writer_of.find(loc.key());
            checkInvariant(it != writer_of.end(),
                           "checkScheduleOnPlan: unwritten location "
                           "survived");
            if (!plan.happensBefore(it->second, inst.id)) {
                return "read of " + locName(plan, loc) +
                       " happens before its write";
            }
        }
    }
    return std::nullopt;
}

std::optional<std::string>
checkScheduleOn(const sched::Skeleton& skeleton,
                const sched::Schedule& schedule, const tree::Tree& tree)
{
    sched::VisitPlan plan(skeleton, tree);
    return checkScheduleOnPlan(plan, schedule);
}

Verifier::Verifier(const sched::Skeleton& skeleton,
                   sem::InterfaceId rootIface,
                   const tree::EnumConfig& config, uint64_t seed,
                   uint32_t threads, sched::PlanCache* planCache)
    : threads_(threads == 0 ? 1 : threads)
{
    if (planCache == nullptr) {
        ownedCache_ = std::make_unique<sched::PlanCache>(skeleton);
        planCache = ownedCache_.get();
    }

    // The round-independent verification space: every enumerated shape
    // first (smallest shapes yield the smallest counterexamples), then
    // the random deeper-tree rounds. Each sampling round draws from its
    // own splitmix64-derived stream so rounds are order-independent —
    // the precondition for checking them in parallel — and deep-tree
    // samples do not correlate across nearby base seeds.
    auto shapes =
        tree::enumerateShapes(skeleton.grammar(), rootIface, config);
    plans_.reserve(shapes.size() + config.randomRounds);
    for (const tree::ShapePtr& shape : shapes) {
        plans_.push_back(planCache->lookup(
            tree::instantiate(skeleton.grammar(), *shape, seed)));
    }
    tree::SampleConfig sample;
    sample.maxDepth = config.maxDepth + config.sampleDepthBump;
    for (uint32_t round = 0; round < config.randomRounds; ++round) {
        Rng rng(roundSeed(seed, round));
        plans_.push_back(planCache->lookup(
            tree::sampleTree(skeleton.grammar(), rootIface, sample, rng)));
    }

    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_);
}

VerifyResult
Verifier::run(const sched::Schedule& schedule, obs::Telemetry& telemetry)
{
    VerifyResult result;
    const size_t count = plans_.size();

    if (threads_ <= 1 || count < 2) {
        for (size_t i = 0; i < count; ++i) {
            auto failure = checkScheduleOnPlan(plans_[i]->plan(), schedule);
            if (failure.has_value()) {
                result.reason = std::move(*failure);
                result.counterexample = plans_[i]->tree();
                result.checkedTrees = i + 1;
                return result;
            }
        }
        result.ok = true;
        result.checkedTrees = count;
        return result;
    }

    // Parallel scan with deterministic first-counterexample early exit.
    // `firstFail` only ever holds indices of real failures and is
    // monotonically lowered via CAS-min; a worker skips index i only
    // when a strictly lower failure is already known, so every index
    // below the final minimum is fully checked. Each index is claimed
    // by exactly one worker (the shared dispenser), so reasons[i] has a
    // single writer and the pool's join publishes it.
    std::atomic<size_t> next{0};
    std::atomic<size_t> firstFail{count};
    std::vector<std::string> reasons(count);
    auto worker = [&]() {
        obs::Span span = telemetry.span("verify.worker", "verify");
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            if (i > firstFail.load(std::memory_order_relaxed))
                continue;
            auto failure = checkScheduleOnPlan(plans_[i]->plan(), schedule);
            if (failure.has_value()) {
                reasons[i] = std::move(*failure);
                size_t current = firstFail.load();
                while (i < current &&
                       !firstFail.compare_exchange_weak(current, i)) {
                }
            }
        }
    };
    for (uint32_t t = 0; t < threads_; ++t)
        pool_->submit(worker);
    pool_->waitAll();

    size_t fail = firstFail.load();
    if (fail < count) {
        result.reason = std::move(reasons[fail]);
        result.counterexample = plans_[fail]->tree();
        result.checkedTrees = fail + 1;
        return result;
    }
    result.ok = true;
    result.checkedTrees = count;
    return result;
}

VerifyResult
verifySchedule(const sched::Skeleton& skeleton,
               const sched::Schedule& schedule, sem::InterfaceId rootIface,
               const tree::EnumConfig& config, uint64_t seed)
{
    Verifier verifier(skeleton, rootIface, config, seed, /*threads=*/1);
    return verifier.run(schedule);
}

SynthesisResult
synthesize(const sched::Skeleton& skeleton, sem::InterfaceId rootIface,
           std::vector<tree::Tree> initialExamples,
           const SynthesisConfig& config, obs::Telemetry& telemetry)
{
    Timer total_timer;
    SynthesisResult result;
    result.verifyThreadsUsed = resolveVerifyThreads(config.verifyThreads);

    // One plan cache per run, shared between the verifier and the
    // example-encoding path: counterexamples re-enter the synthesizer
    // with their plan already expanded.
    sched::PlanCache planCache(skeleton);
    std::optional<Verifier> verifier;
    if (config.reuseVerifierState) {
        verifier.emplace(skeleton, rootIface, config.verify, config.seed,
                         result.verifyThreadsUsed, &planCache);
    }

    std::vector<std::shared_ptr<const sched::CachedPlan>> examples;
    for (tree::Tree& example : initialExamples)
        examples.push_back(planCache.lookup(std::move(example)));
    if (examples.empty()) {
        // Seed with the smallest shapes the verifier would try first,
        // plus a few deeper random trees: richer initial examples save
        // most CEGIS rounds (each round re-verifies, and under the
        // from-scratch engine also re-encodes).
        tree::EnumConfig seed_config = config.verify;
        seed_config.limit = 2;
        for (const tree::ShapePtr& shape : tree::enumerateShapes(
                 skeleton.grammar(), rootIface, seed_config)) {
            examples.push_back(planCache.lookup(tree::instantiate(
                skeleton.grammar(), *shape, config.seed)));
        }
        Rng rng(config.seed + 0x5eed);
        tree::SampleConfig deep;
        deep.maxDepth = config.verify.maxDepth + 1;
        for (int i = 0; i < 3; ++i) {
            examples.push_back(planCache.lookup(tree::sampleTree(
                skeleton.grammar(), rootIface, deep, rng)));
        }
    }

    const bool incremental = config.engine == Engine::DomainSpecificIlp &&
                             config.incrementalEncoding;
    std::optional<symbolic::IlpSession> session;
    if (incremental)
        session.emplace(skeleton);
    size_t encoded = 0; // examples already in the session

    for (uint32_t round = 0; round < config.maxIterations; ++round) {
        ++result.cegisIterations;
        obs::Span roundSpan = telemetry.span("cegis.round", "phase", round);

        std::optional<sched::Schedule> candidate;
        if (incremental) {
            for (; encoded < examples.size(); ++encoded)
                session->addExample(examples[encoded]->plan(), telemetry);
            candidate = session->solve(telemetry);
        } else {
            std::vector<const tree::Tree*> views;
            views.reserve(examples.size());
            for (const auto& example : examples)
                views.push_back(&example->tree());
            if (config.engine == Engine::DomainSpecificIlp) {
                candidate = symbolic::synthesizeIlp(skeleton, views,
                                                    telemetry);
            } else {
                candidate = symbolic::synthesizeGeneral(skeleton, views,
                                                        telemetry);
            }
        }

        if (!candidate.has_value()) {
            result.failure = "synthesizer: constraints are unsatisfiable "
                             "for the current examples";
            break;
        }

        obs::Span verifySpan = telemetry.span("verify");
        VerifyResult verify =
            config.reuseVerifierState
                ? verifier->run(*candidate, telemetry)
                : verifySchedule(skeleton, *candidate, rootIface,
                                 config.verify, config.seed);
        verifySpan.end();
        result.verifiedTrees = verify.checkedTrees;
        if (verify.ok) {
            result.schedule = std::move(candidate);
            break;
        }
        checkInvariant(verify.counterexample.has_value(),
                       "verifier failed without a counterexample");
        examples.push_back(
            planCache.lookup(std::move(*verify.counterexample)));
    }

    if (!result.schedule.has_value() && result.failure.empty())
        result.failure = "CEGIS iteration budget exhausted";
    result.examplesUsed = examples.size();
    telemetry.add("plan_cache.hits", static_cast<double>(planCache.hits()));
    telemetry.add("plan_cache.misses",
                  static_cast<double>(planCache.misses()));
    result.totalSeconds = total_timer.seconds();
    return result;
}

} // namespace hecate::synth
