#include "synth/cegis.hpp"

#include <sstream>

#include "sched/visit_plan.hpp"
#include "support/timer.hpp"

namespace hecate::synth {

namespace {

/** Human-readable "Class.attr@node" for diagnostics. */
std::string
locName(const sched::VisitPlan& plan, sched::Location loc)
{
    const sem::Grammar& grammar = plan.skeleton().grammar();
    const tree::Node& node = plan.tree().node(loc.node);
    const sem::ClassInfo& cls = grammar.cls(node.cls);
    return cls.name + "." +
           grammar.iface(cls.iface).attrs[loc.attr].name + "@n" +
           std::to_string(loc.node);
}

} // namespace

std::optional<std::string>
checkScheduleOn(const sched::Skeleton& skeleton,
                const sched::Schedule& schedule, const tree::Tree& tree)
{
    const sem::Grammar& grammar = skeleton.grammar();
    sched::VisitPlan plan(skeleton, tree);

    // Resolve the writer instance of every output location.
    std::unordered_map<uint64_t, sched::InstId> writer_of;
    for (sched::Location loc : plan.outputLocations()) {
        uint32_t count = 0;
        for (const sched::Writer& w : plan.writersOf(loc)) {
            const sched::Instance& wi = plan.instances()[w.inst];
            bool writes = w.fixed ||
                          (schedule.bySlot[wi.slot].has_value() &&
                           *schedule.bySlot[wi.slot] == w.rule);
            if (writes) {
                writer_of[loc.key()] = w.inst;
                ++count;
            }
        }
        if (count == 0) {
            return "location " + locName(plan, loc) + " is never computed";
        }
        if (count > 1) {
            return "location " + locName(plan, loc) +
                   " is computed more than once";
        }
    }

    // Check every read of every executing instance.
    for (const sched::Instance& inst : plan.instances()) {
        sem::RuleId rule;
        if (inst.kind == sched::Instance::Kind::Eval) {
            rule = inst.rule;
        } else {
            const auto& assignment = schedule.bySlot[inst.slot];
            if (!assignment.has_value())
                continue;
            rule = *assignment;
        }
        for (sched::Location loc : plan.readsFor(inst, rule)) {
            const tree::Node& target = tree.node(loc.node);
            const sem::ClassInfo& cls = grammar.cls(target.cls);
            if (grammar.iface(cls.iface).isInput(loc.attr))
                continue;
            auto it = writer_of.find(loc.key());
            checkInvariant(it != writer_of.end(),
                           "checkScheduleOn: unwritten location survived");
            if (!plan.happensBefore(it->second, inst.id)) {
                return "read of " + locName(plan, loc) +
                       " happens before its write";
            }
        }
    }
    return std::nullopt;
}

VerifyResult
verifySchedule(const sched::Skeleton& skeleton,
               const sched::Schedule& schedule, sem::InterfaceId rootIface,
               const tree::EnumConfig& config, uint64_t seed)
{
    VerifyResult result;
    auto shapes = tree::enumerateShapes(skeleton.grammar(), rootIface,
                                        config);
    for (const tree::ShapePtr& shape : shapes) {
        tree::Tree candidate =
            tree::instantiate(skeleton.grammar(), *shape, seed);
        ++result.checkedTrees;
        auto failure = checkScheduleOn(skeleton, schedule, candidate);
        if (failure.has_value()) {
            result.reason = *failure;
            result.counterexample = std::move(candidate);
            return result;
        }
    }
    // The enumeration is capped, so back it with randomly sampled
    // deeper trees (shape coverage beyond the cap).
    Rng rng(seed * 0x9e37u + 17);
    tree::SampleConfig sample;
    sample.maxDepth = config.maxDepth + 2;
    for (int round = 0; round < 24; ++round) {
        tree::Tree candidate =
            tree::sampleTree(skeleton.grammar(), rootIface, sample, rng);
        ++result.checkedTrees;
        auto failure = checkScheduleOn(skeleton, schedule, candidate);
        if (failure.has_value()) {
            result.reason = *failure;
            result.counterexample = std::move(candidate);
            return result;
        }
    }
    result.ok = true;
    return result;
}

SynthesisResult
synthesize(const sched::Skeleton& skeleton, sem::InterfaceId rootIface,
           std::vector<tree::Tree> initialExamples,
           const SynthesisConfig& config)
{
    Timer total_timer;
    SynthesisResult result;

    std::vector<tree::Tree> examples = std::move(initialExamples);
    if (examples.empty()) {
        // Seed with the smallest shapes the verifier would try first,
        // plus a few deeper random trees: richer initial examples save
        // most CEGIS rounds (each round re-encodes and re-verifies).
        tree::EnumConfig seed_config = config.verify;
        seed_config.limit = 2;
        for (const tree::ShapePtr& shape : tree::enumerateShapes(
                 skeleton.grammar(), rootIface, seed_config)) {
            examples.push_back(tree::instantiate(skeleton.grammar(), *shape,
                                                 config.seed));
        }
        Rng rng(config.seed + 0x5eed);
        tree::SampleConfig deep;
        deep.maxDepth = config.verify.maxDepth + 1;
        for (int i = 0; i < 3; ++i) {
            examples.push_back(tree::sampleTree(skeleton.grammar(),
                                                rootIface, deep, rng));
        }
    }

    for (uint32_t round = 0; round < config.maxIterations; ++round) {
        ++result.cegisIterations;
        std::vector<const tree::Tree*> views;
        views.reserve(examples.size());
        for (const tree::Tree& example : examples)
            views.push_back(&example);

        std::optional<sched::Schedule> candidate;
        if (config.engine == Engine::DomainSpecificIlp) {
            symbolic::IlpStats stats;
            candidate = symbolic::synthesizeIlp(skeleton, views, &stats);
            result.ilpStats.sigmaVars = stats.sigmaVars;
            result.ilpStats.constraints += stats.constraints;
            result.ilpStats.constraintTerms += stats.constraintTerms;
            result.ilpStats.traceStmts += stats.traceStmts;
            result.ilpStats.branchNodes += stats.branchNodes;
            result.ilpStats.encodeSeconds += stats.encodeSeconds;
            result.ilpStats.solveSeconds += stats.solveSeconds;
        } else {
            symbolic::GeneralStats stats;
            candidate = symbolic::synthesizeGeneral(skeleton, views, &stats);
            result.generalStats.sigmaVars = stats.sigmaVars;
            result.generalStats.formulaNodes += stats.formulaNodes;
            result.generalStats.cnfVars += stats.cnfVars;
            result.generalStats.cnfClauses += stats.cnfClauses;
            result.generalStats.satConflicts += stats.satConflicts;
            result.generalStats.satDecisions += stats.satDecisions;
            result.generalStats.encodeSeconds += stats.encodeSeconds;
            result.generalStats.solveSeconds += stats.solveSeconds;
        }

        if (!candidate.has_value()) {
            result.failure = "synthesizer: constraints are unsatisfiable "
                             "for the current examples";
            break;
        }

        VerifyResult verify = verifySchedule(skeleton, *candidate,
                                             rootIface, config.verify,
                                             config.seed);
        result.verifiedTrees = verify.checkedTrees;
        if (verify.ok) {
            result.schedule = std::move(candidate);
            break;
        }
        checkInvariant(verify.counterexample.has_value(),
                       "verifier failed without a counterexample");
        examples.push_back(std::move(*verify.counterexample));
    }

    if (!result.schedule.has_value() && result.failure.empty())
        result.failure = "CEGIS iteration budget exhausted";
    result.examplesUsed = examples.size();
    result.totalSeconds = total_timer.seconds();
    return result;
}

} // namespace hecate::synth
