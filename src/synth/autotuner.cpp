#include "synth/autotuner.hpp"

#include "support/timer.hpp"

namespace hecate::synth {

const char*
skeletonStyleName(SkeletonStyle style)
{
    switch (style) {
      case SkeletonStyle::PostOrder: return "post-order";
      case SkeletonStyle::Sandwich: return "sandwich";
      case SkeletonStyle::PreOrder: return "pre-order";
      case SkeletonStyle::DoublePost: return "double-post-order";
    }
    return "unknown";
}

namespace {

/** Count fold rules of @p cls over collection child @p child. */
size_t
foldRuleCount(const sem::Grammar& grammar, const sem::ClassInfo& cls,
              sem::ChildId child)
{
    size_t count = 0;
    for (sem::RuleId rule : cls.rules) {
        const sem::RuleInfo& info = grammar.rule(rule);
        if (info.isFold && info.foldChild == child)
            ++count;
    }
    return count;
}

void
appendHoles(std::vector<ast::TStmtPtr>& stmts, size_t count)
{
    for (size_t i = 0; i < count; ++i)
        stmts.push_back(ast::TStmt::makeHole());
}

/** The recursive-visit statements of a case: scalar recurs in child
 *  declaration order, then one iterate block per collection child
 *  containing a recur and one in-loop slot per fold rule. */
std::vector<ast::TStmtPtr>
visitStmts(const sem::Grammar& grammar, const sem::ClassInfo& cls)
{
    std::vector<ast::TStmtPtr> stmts;
    for (const sem::ChildInfo& child : cls.children) {
        if (child.collection)
            continue;
        stmts.push_back(ast::TStmt::makeRecur(child.name));
    }
    for (const sem::ChildInfo& child : cls.children) {
        if (!child.collection)
            continue;
        std::vector<ast::TStmtPtr> body;
        body.push_back(ast::TStmt::makeRecur(child.name));
        for (size_t i = 0; i < foldRuleCount(grammar, cls, child.id); ++i)
            body.push_back(ast::TStmt::makeHole());
        stmts.push_back(ast::TStmt::makeIterate(child.name,
                                                std::move(body)));
    }
    return stmts;
}

} // namespace

ast::TraversalDecl
makeSkeleton(const sem::Grammar& grammar, SkeletonStyle style,
             const std::string& name)
{
    ast::TraversalDecl decl;
    decl.name = name;
    for (const sem::ClassInfo& cls : grammar.classes()) {
        ast::CaseDecl case_decl;
        case_decl.className = cls.name;
        size_t rules = cls.rules.size();

        switch (style) {
          case SkeletonStyle::PostOrder:
            case_decl.stmts = visitStmts(grammar, cls);
            appendHoles(case_decl.stmts, rules);
            break;
          case SkeletonStyle::PreOrder:
            appendHoles(case_decl.stmts, rules);
            for (auto& stmt : visitStmts(grammar, cls))
                case_decl.stmts.push_back(std::move(stmt));
            break;
          case SkeletonStyle::Sandwich: {
            appendHoles(case_decl.stmts, rules);
            for (auto& stmt : visitStmts(grammar, cls))
                case_decl.stmts.push_back(std::move(stmt));
            appendHoles(case_decl.stmts, rules);
            break;
          }
          case SkeletonStyle::DoublePost:
            case_decl.stmts = visitStmts(grammar, cls);
            appendHoles(case_decl.stmts, 2 * rules);
            break;
        }
        decl.cases.push_back(std::move(case_decl));
    }
    return decl;
}

AutotuneResult
autotune(const sem::Grammar& grammar, sem::InterfaceId rootIface,
         const SynthesisConfig& config, obs::Telemetry& telemetry)
{
    Timer timer;
    AutotuneResult result;

    constexpr SkeletonStyle kOrder[] = {
        SkeletonStyle::PostOrder,
        SkeletonStyle::Sandwich,
        SkeletonStyle::PreOrder,
        SkeletonStyle::DoublePost,
    };

    for (SkeletonStyle style : kOrder) {
        obs::Span attempt = telemetry.span(
            "autotune.style", "phase",
            static_cast<int64_t>(result.skeletonsTried));
        ++result.skeletonsTried;
        sched::Skeleton skeleton = sched::Skeleton::resolve(
            grammar, makeSkeleton(grammar, style));
        SynthesisResult synthesis =
            synthesize(skeleton, rootIface, {}, config, telemetry);
        result.lastSynthesis = std::move(synthesis);
        if (result.lastSynthesis.schedule.has_value()) {
            result.style = style;
            result.schedule = result.lastSynthesis.schedule;
            result.skeleton.emplace(std::move(skeleton));
            break;
        }
    }
    result.totalSeconds = timer.seconds();
    return result;
}

} // namespace hecate::synth
