#pragma once

/**
 * @file
 * HecateA, the auto-tuner of §6.1 ("Usability"): instead of requiring
 * a user-written symbolic traversal, an outer loop proposes traversal
 * skeletons derived from the grammar — post-order, sandwich (slots on
 * both sides of the recursive visits), pre-order, and a two-pass
 * variant with twice the slots — and runs the CEGIS synthesizer on
 * each until one admits a correct concrete traversal.
 */

#include <optional>
#include <string>

#include "synth/cegis.hpp"

namespace hecate::synth {

/** Skeleton families the auto-tuner explores, in order. */
enum class SkeletonStyle {
    PostOrder, ///< recurs/iterates first, then one slot per rule
    Sandwich,  ///< slots, recursive visits, slots
    PreOrder,  ///< slots first, then recursive visits
    DoublePost,///< post-order with two slots per rule (more freedom)
};

/** Name of a skeleton style (for reports). */
const char* skeletonStyleName(SkeletonStyle style);

/**
 * Build the symbolic traversal of @p style for @p grammar: one case
 * per class with recurs for scalar children, an iterate block (with
 * in-loop slots for fold rules) per collection child, and top-level
 * slots per the style.
 */
ast::TraversalDecl makeSkeleton(const sem::Grammar& grammar,
                                SkeletonStyle style,
                                const std::string& name = "auto");

/** Result of an auto-tuning run. */
struct AutotuneResult {
    std::optional<sched::Skeleton> skeleton;
    std::optional<sched::Schedule> schedule;
    SkeletonStyle style = SkeletonStyle::PostOrder;
    uint32_t skeletonsTried = 0;
    double totalSeconds = 0.0;
    SynthesisResult lastSynthesis;
};

/**
 * Search skeleton styles until synthesis succeeds. Each attempt runs
 * under an "autotune.style" span on @p telemetry (category "phase",
 * index = attempt ordinal), with the synthesis spans nested within.
 */
AutotuneResult autotune(const sem::Grammar& grammar,
                        sem::InterfaceId rootIface,
                        const SynthesisConfig& config = {},
                        obs::Telemetry& telemetry = obs::Telemetry::nil());

} // namespace hecate::synth
