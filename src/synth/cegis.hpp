#pragma once

/**
 * @file
 * The CEGIS loop of Fig. 5: a synthesizer (either symbolic compilation
 * strategy) proposes a schedule consistent with the current example
 * trees; the verifier checks it against every tree up to depth k and
 * returns a counterexample on failure; the loop repeats until the
 * verifier is silent or the synthesizer reports infeasibility.
 */

#include <optional>
#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "symbolic/general_encoder.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "tree/enumerate.hpp"

namespace hecate::synth {

/** Which symbolic compilation strategy drives the synthesizer. */
enum class Engine {
    DomainSpecificIlp, ///< Hecate proper (§5)
    GeneralPurposeSat, ///< HecateG (§4.2)
};

/** Knobs of a synthesis run. */
struct SynthesisConfig {
    Engine engine = Engine::DomainSpecificIlp;
    tree::EnumConfig verify;      ///< the verifier's bounded tree space
    uint32_t maxIterations = 64;  ///< CEGIS round budget
    uint64_t seed = 1;            ///< tree instantiation seed
};

/** Outcome of verifying one concrete schedule. */
struct VerifyResult {
    bool ok = false;
    size_t checkedTrees = 0;
    std::optional<tree::Tree> counterexample;
    std::string reason; ///< human-readable failure description
};

/** Outcome of a synthesis run. */
struct SynthesisResult {
    std::optional<sched::Schedule> schedule;
    uint32_t cegisIterations = 0;
    size_t examplesUsed = 0;
    size_t verifiedTrees = 0;
    symbolic::GeneralStats generalStats; ///< accumulated (SAT engine)
    symbolic::IlpStats ilpStats;         ///< accumulated (ILP engine)
    double totalSeconds = 0.0;
    std::string failure; ///< set when schedule is empty
};

/**
 * Check @p schedule on a single tree: every output location written
 * exactly once and every read happens-after its write (Def. 3.5).
 * Returns an empty optional on success, else a failure description.
 */
std::optional<std::string> checkScheduleOn(const sched::Skeleton& skeleton,
                                           const sched::Schedule& schedule,
                                           const tree::Tree& tree);

/**
 * Verify @p schedule against every tree shape up to the configured
 * depth, returning the first counterexample found.
 */
VerifyResult verifySchedule(const sched::Skeleton& skeleton,
                            const sched::Schedule& schedule,
                            sem::InterfaceId rootIface,
                            const tree::EnumConfig& config,
                            uint64_t seed = 1);

/**
 * Run the CEGIS loop for @p skeleton with trees rooted at
 * @p rootIface. @p initialExamples seeds the synthesizer (the paper's
 * user-provided initial tree); when empty, the two smallest enumerated
 * shapes are used.
 */
SynthesisResult synthesize(const sched::Skeleton& skeleton,
                           sem::InterfaceId rootIface,
                           std::vector<tree::Tree> initialExamples,
                           const SynthesisConfig& config = {});

} // namespace hecate::synth
