#pragma once

/**
 * @file
 * The CEGIS loop of Fig. 5: a synthesizer (either symbolic compilation
 * strategy) proposes a schedule consistent with the current example
 * trees; the verifier checks it against every tree up to depth k and
 * returns a counterexample on failure; the loop repeats until the
 * verifier is silent or the synthesizer reports infeasibility.
 *
 * The inner loop is built around reuse and parallelism:
 *
 *  - the ILP engine keeps a persistent symbolic::IlpSession, so round
 *    N encodes only the newest counterexample (the from-scratch path
 *    is kept behind SynthesisConfig::incrementalEncoding for
 *    differential testing);
 *  - the Verifier enumerates the bounded tree space once, memoizes one
 *    VisitPlan per shape (sched::PlanCache), and shards checking
 *    across a thread pool with first-counterexample early exit — the
 *    returned counterexample is the lowest-index failing tree
 *    regardless of thread timing, so parallel and serial verification
 *    are bit-identical;
 *  - counterexamples re-enter the synthesizer through the same plan
 *    cache, so their plans are never rebuilt.
 */

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sched/plan_cache.hpp"
#include "sched/schedule.hpp"
#include "support/thread_pool.hpp"
#include "tree/enumerate.hpp"

namespace hecate::synth {

/** Which symbolic compilation strategy drives the synthesizer. */
enum class Engine {
    DomainSpecificIlp, ///< Hecate proper (§5)
    GeneralPurposeSat, ///< HecateG (§4.2)
};

/** Knobs of a synthesis run. */
struct SynthesisConfig {
    Engine engine = Engine::DomainSpecificIlp;
    tree::EnumConfig verify;      ///< the verifier's bounded tree space
    uint32_t maxIterations = 64;  ///< CEGIS round budget
    uint64_t seed = 1;            ///< tree instantiation seed
    /**
     * ILP engine only: keep a persistent IlpSession so each round
     * encodes just the new counterexample (warm-started solve). false
     * re-encodes every example from scratch each round — the pre-reuse
     * reference path, kept for differential testing and benchmarks.
     */
    bool incrementalEncoding = true;
    /**
     * Keep the verifier's enumerated shapes and memoized plans alive
     * across rounds. false re-enumerates and re-expands per round (the
     * reference path). Does not change any result, only cost.
     */
    bool reuseVerifierState = true;
    /**
     * Verification worker threads. 0 = auto: $HECATE_VERIFY_THREADS if
     * set, else hardware concurrency; 1 = serial. Parallel verification
     * is deterministic, so this never changes any result.
     */
    uint32_t verifyThreads = 0;
};

/** Outcome of verifying one concrete schedule. */
struct VerifyResult {
    bool ok = false;
    size_t checkedTrees = 0;
    std::optional<tree::Tree> counterexample;
    std::string reason; ///< human-readable failure description
};

/**
 * Outcome of a synthesis run. Timing and encoding-size measurements are
 * not carried here: they flow into the obs::Telemetry sink passed to
 * synthesize() — per-round "cegis.round" spans, "encode"/"solve" spans,
 * a "verify" span per round, and the "ilp.*" / "sat.*" /
 * "plan_cache.*" counters.
 */
struct SynthesisResult {
    std::optional<sched::Schedule> schedule;
    uint32_t cegisIterations = 0;
    size_t examplesUsed = 0;
    size_t verifiedTrees = 0;
    double totalSeconds = 0.0;
    uint32_t verifyThreadsUsed = 0;
    std::string failure; ///< set when schedule is empty
};

/**
 * Resolve SynthesisConfig::verifyThreads: an explicit value wins, then
 * $HECATE_VERIFY_THREADS, then hardware concurrency (at least 1).
 */
uint32_t resolveVerifyThreads(uint32_t configured);

/**
 * Check @p schedule on a single tree: every output location written
 * exactly once and every read happens-after its write (Def. 3.5).
 * Returns an empty optional on success, else a failure description.
 */
std::optional<std::string> checkScheduleOn(const sched::Skeleton& skeleton,
                                           const sched::Schedule& schedule,
                                           const tree::Tree& tree);

/** Same check against an already-expanded plan (no plan rebuild). */
std::optional<std::string>
checkScheduleOnPlan(const sched::VisitPlan& plan,
                    const sched::Schedule& schedule);

/**
 * The CEGIS verifier with its round-independent state hoisted out:
 * shapes are enumerated and instantiated once, one VisitPlan is
 * memoized per shape, and a dedicated thread pool shards the checks.
 *
 * run() returns the lowest-index failing tree (enumeration order, then
 * sampling-round order) as the counterexample whether it executes
 * serially or in parallel: workers may skip indices above an
 * already-found failure, but every index below the final minimum is
 * always fully checked.
 */
class Verifier {
  public:
    /**
     * @param threads worker count (already resolved; 1 = serial).
     * @param planCache shared plan cache; nullptr = private cache.
     */
    Verifier(const sched::Skeleton& skeleton, sem::InterfaceId rootIface,
             const tree::EnumConfig& config, uint64_t seed,
             uint32_t threads, sched::PlanCache* planCache = nullptr);

    /**
     * Verify one schedule. When parallel, each pool worker wraps its
     * share of the scan in a "verify.worker" span on @p telemetry —
     * the spans land on the worker threads' tids in the trace.
     */
    VerifyResult run(const sched::Schedule& schedule,
                     obs::Telemetry& telemetry = obs::Telemetry::nil());

    /** Trees checked per run: enumerated shapes + random rounds. */
    size_t treeCount() const { return plans_.size(); }
    uint32_t threadCount() const { return threads_; }

  private:
    std::unique_ptr<sched::PlanCache> ownedCache_;
    std::vector<std::shared_ptr<const sched::CachedPlan>> plans_;
    uint32_t threads_;
    std::unique_ptr<ThreadPool> pool_; ///< present when threads_ > 1
};

/**
 * Verify @p schedule against every tree shape up to the configured
 * depth (plus config.randomRounds sampled deeper trees), returning the
 * first counterexample found. One-shot reference form: builds a fresh
 * Verifier per call with serial checking and no shared plan cache.
 */
VerifyResult verifySchedule(const sched::Skeleton& skeleton,
                            const sched::Schedule& schedule,
                            sem::InterfaceId rootIface,
                            const tree::EnumConfig& config,
                            uint64_t seed = 1);

/**
 * Run the CEGIS loop for @p skeleton with trees rooted at
 * @p rootIface. @p initialExamples seeds the synthesizer (the paper's
 * user-provided initial tree); when empty, the two smallest enumerated
 * shapes are used.
 *
 * @p telemetry receives one "cegis.round" span per round (category
 * "phase", index = round), the encoders' "encode"/"solve" spans and
 * size counters nested within, one "verify" span per round, and the
 * final plan_cache.hits / plan_cache.misses counters.
 */
SynthesisResult synthesize(const sched::Skeleton& skeleton,
                           sem::InterfaceId rootIface,
                           std::vector<tree::Tree> initialExamples,
                           const SynthesisConfig& config = {},
                           obs::Telemetry& telemetry = obs::Telemetry::nil());

} // namespace hecate::synth
