#pragma once

/**
 * @file
 * The compiler driver: one object that owns the whole
 * synth → plan → compile → execute wiring.
 *
 * Every entry point used to re-implement this chain by hand — the CLI
 * three times over, the service, and each benchmark — with its own
 * engine-string parsing, builtin-grammar resolution, cache handling
 * and phase timing. A Pipeline replaces that with explicit,
 * individually runnable stages, each returning a typed artifact the
 * pipeline memoizes:
 *
 *   parse()          -> ParseArtifact    (L_a / L_t ASTs)
 *   analyze()        -> AnalyzeArtifact  (sem::Grammar, root, ProblemKey)
 *   synthesize()     -> SynthArtifact    (schedule + provenance)
 *   plan()           -> PlanArtifact     (hole-free concrete skeleton)
 *   compileProgram() -> runtime::Program (traversal bytecode)
 *   execute()        -> ExecuteArtifact  (arena + runtime stats)
 *
 * Callers stop at any stage (the CLI's synth mode never plans;
 * bench_table2 never executes) or resume from a cached one: when
 * PipelineOptions::cache is set, synthesize() serves the schedule from
 * the content-addressed ScheduleCache and later stages run from the
 * decoded artifact exactly as from a fresh CEGIS run. The service's
 * single-flight followers enter the same way through adoptPayload().
 *
 * Every stage runs under a telemetry span of category "stage"
 * ("parse", "analyze", "synthesize", "plan", "compile", "execute"),
 * with the CEGIS rounds, solver calls and executor counters nested
 * inside — `hecate_cli synth --trace-out` renders the whole pipeline
 * in chrome://tracing.
 *
 * Lifetime: the Pipeline heap-pins its sem::Grammar, and every
 * artifact (Skeleton, Program, arena) points into it — artifacts must
 * not outlive the Pipeline.
 */

#include <memory>
#include <optional>
#include <string>

#include "grammars/grammars.hpp"
#include "incr/edit.hpp"
#include "incr/reexecute.hpp"
#include "lang/ast.hpp"
#include "obs/telemetry.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/forest.hpp"
#include "runtime/program.hpp"
#include "sched/schedule.hpp"
#include "service/native_tier.hpp"
#include "service/problem_key.hpp"
#include "service/schedule_cache.hpp"
#include "synth/autotuner.hpp"
#include "synth/cegis.hpp"

namespace hecate::pipeline {

/** How a synthesize() stage obtained its schedule. */
enum class Provenance : uint8_t {
    CacheHit,       ///< decoded from the schedule cache
    JoinedInFlight, ///< adopted an identical in-flight run's payload
    FreshRun,       ///< this pipeline ran CEGIS itself
};

/** Short name for reports ("cache" / "joined" / "fresh"). */
const char* provenanceName(Provenance provenance);

/** Parse an engine name ("ilp" | "sat"); throws UserError otherwise. */
synth::Engine parseEngineName(const std::string& name);

/** The bundled benchmark named by a "builtin:" suffix, or nullptr. */
const grammars::Benchmark* findBuiltin(const std::string& name);

/** Read a whole text file; throws UserError when it cannot be opened. */
std::string readTextFile(const std::string& path);

/** A grammar argument resolved to source text. */
struct GrammarSource {
    std::string source;        ///< L_a source text
    std::string rootInterface; ///< builtin's root; empty for files
};

/**
 * Resolve a CLI grammar argument: "builtin:NAME" names a bundled
 * benchmark (binarytree, fmm, piecewise, ast, rendertree, cssfloat,
 * cssmargin, cssfull), anything else is a path to an L_a file.
 */
GrammarSource resolveGrammarArg(const std::string& arg);

/** Knobs of a pipeline run. */
struct PipelineOptions {
    synth::SynthesisConfig config;
    /** Root interface name; empty = the interface of class 0. */
    std::string rootInterface;
    /** Stage-level schedule cache; null = always synthesize fresh. */
    service::ScheduleCache* cache = nullptr;
    /** Telemetry sink; null = disabled. */
    obs::Telemetry* telemetry = nullptr;
    /**
     * Native-tier controller (owns the compiler + NativeCache); null =
     * bytecode only regardless of `tier`.
     */
    service::NativeTier* nativeTier = nullptr;
    /** Which tier execution runs on (see service::ExecTier). */
    service::ExecTier tier = service::ExecTier::Bytecode;
};

/** Stage 1: parsed ASTs. */
struct ParseArtifact {
    /** Consumed (moved from) by analyze(): the grammar takes ownership
     *  of the rule expressions. Inspect it between parse and analyze. */
    ast::GrammarAst grammarAst;
    /** Absent when no traversal was given (auto-tune mode). */
    std::optional<ast::TraversalDecl> traversalAst;
};

/** Stage 2: analyzed grammar identity (grammar via Pipeline::grammar). */
struct AnalyzeArtifact {
    sem::InterfaceId root = sem::kInvalidId;
    service::ProblemKey key;
    bool autoMode = false; ///< no skeleton given: the auto-tuner picks
};

/** Stage 3: the synthesized schedule. */
struct SynthArtifact {
    bool ok = false;
    Provenance provenance = Provenance::FreshRun;
    std::optional<sched::Schedule> schedule;
    std::string concreteTraversal; ///< printed Fig. 4(b) form
    std::string payload;           ///< cacheable blob (marker + schedule)
    uint32_t cegisIterations = 0;  ///< fresh runs only
    size_t verifiedTrees = 0;
    uint32_t verifyThreadsUsed = 0;
    bool autoTuned = false;
    synth::SkeletonStyle style = synth::SkeletonStyle::PostOrder;
    uint32_t skeletonsTried = 0; ///< auto-tuned fresh runs only
    double seconds = 0.0;        ///< this stage's wall time
    std::string failure;         ///< set when !ok
};

/** Stage 4: the concrete traversal re-resolved hole-free. */
struct PlanArtifact {
    ast::TraversalDecl concreteAst;
    sched::Skeleton concrete;

    PlanArtifact(ast::TraversalDecl ast, sched::Skeleton skeleton)
        : concreteAst(std::move(ast)), concrete(std::move(skeleton))
    {
    }
};

/** Stage 5b: the native-tier module for this pipeline's schedule. */
struct NativeArtifact {
    bool ok = false; ///< module resolved (cache hit or compile)
    std::shared_ptr<codegen::NativeModule> module;
    double seconds = 0.0; ///< this attempt's wall time
    std::string failure;  ///< why the tier fell back (when !ok)
};

/** execute() inputs: instance shape + execution knobs. */
struct ExecuteRequest {
    runtime::GenConfig gen;
    runtime::ExecOptions exec; ///< pool=null runs sequentially
    /**
     * Trees per batch. execute() requires 1; executeForest() packs
     * this many independent instances (gen.targetNodes each) into one
     * ForestArena and runs them in one batched execution.
     */
    uint32_t batchCount = 1;
};

/** Stage 6: the executed instance. */
struct ExecuteArtifact {
    runtime::TreeArena arena;
    runtime::RuntimeStats stats;
    double generateSeconds = 0.0;
    double executeSeconds = 0.0;

    ExecuteArtifact(runtime::TreeArena a, runtime::RuntimeStats s)
        : arena(std::move(a)), stats(s)
    {
    }
};

/** Stage 6, batched: the executed forest. */
struct ForestExecuteArtifact {
    runtime::ForestArena forest;
    runtime::RuntimeStats stats; ///< batch aggregate
    double generateSeconds = 0.0;
    double executeSeconds = 0.0;

    ForestExecuteArtifact(runtime::ForestArena f, runtime::RuntimeStats s)
        : forest(std::move(f)), stats(s)
    {
    }
};

/** The driver. Stages are lazy, memoized, and run in dependency order. */
class Pipeline {
  public:
    Pipeline(std::string grammarSrc, std::string traversalSrc,
             PipelineOptions options = {});

    /**
     * Convenience: run a bundled benchmark. The benchmark's root
     * interface applies unless @p options names one explicitly.
     */
    Pipeline(const grammars::Benchmark& benchmark, std::string traversalSrc,
             PipelineOptions options = {});

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    const ParseArtifact& parse();
    const AnalyzeArtifact& analyze();

    /**
     * Produce the schedule: from the cache when possible, else by
     * running CEGIS (or the auto-tuner in auto mode). Synthesis
     * failure is reported in the artifact (ok=false), not thrown;
     * malformed sources still throw UserError from parse/analyze.
     */
    const SynthArtifact& synthesize();

    /**
     * Cache-only probe: the memoized artifact when the schedule cache
     * already holds this problem's entry, nullptr otherwise (without
     * running CEGIS). Lets callers split the cache lookup from the
     * fresh run — the service decides between leading and joining a
     * flight in between.
     */
    const SynthArtifact* synthesizeFromCache();

    /**
     * Enter the synthesize stage from another run's payload (the
     * single-flight follower path). Returns an artifact with
     * provenance JoinedInFlight, or ok=false when the payload does
     * not decode against this pipeline's grammar.
     */
    const SynthArtifact& adoptPayload(const std::string& payload);

    /** Resolve the concrete traversal; throws when synthesis failed. */
    const PlanArtifact& plan();

    /** Lower the concrete traversal to bytecode. */
    const runtime::Program& compileProgram();

    /**
     * The CompileNative stage: resolve the native module for this
     * pipeline's (problem, schedule) and @p strategy's code shape,
     * through PipelineOptions::nativeTier. Tier Native blocks on the
     * compile (single-flight across pipelines via the tier); tier Auto
     * polls — a miss kicks the background build and reports
     * ok = false, so callers keep executing bytecode and re-enter
     * the stage to hot-swap once the build lands. Successful modules
     * are memoized per code shape; misses are re-polled on every call.
     */
    NativeArtifact compileNative(runtime::SweepStrategy strategy =
                                     runtime::SweepStrategy::Auto);

    /** Generate an arena instance and run the program over it. */
    ExecuteArtifact execute(const ExecuteRequest& request);

    /**
     * Run the program over a caller-supplied tree instance (the serve
     * daemon's client-provided trees enter here): flatten @p tree into
     * an arena and execute. The tree must have been built against this
     * pipeline's grammar() object — trees parsed from a different
     * Grammar instance are rejected (UserError), matching the
     * executor's object-identity rule.
     */
    ExecuteArtifact executeTree(const tree::Tree& tree,
                                const runtime::ExecOptions& exec);

    /**
     * Generate request.batchCount instances, pack them into one
     * ForestArena, and run the program over the whole batch in one
     * execution (runtime::execute over the packed view).
     */
    ForestExecuteArtifact executeForest(const ExecuteRequest& request);

    /**
     * The compiled program's per-rule read sets (runs compileProgram).
     * Built once and memoized; both incremental stages consume it.
     */
    const incr::IncrPlan& incrPlan();

    /**
     * The Edit stage: apply @p edits to @p arena in order under an
     * "edit" span, marking dirt for a later reexecute(). The arena
     * must belong to this pipeline's grammar — arenas from execute()
     * qualify. Returns the number of edits applied and exports
     * `incr.edits` / `incr.edit_seconds` counters.
     */
    uint64_t edit(runtime::TreeArena& arena,
                  const std::vector<incr::Edit>& edits);

    /**
     * The Reexecute stage: partially re-evaluate @p arena's dirty
     * region with this pipeline's program under a "reexecute" span
     * (see incr::reexecute). Telemetry defaults to the pipeline's
     * sink; `incr.*` counters report frontier size and walk effort.
     */
    incr::IncrStats reexecute(runtime::TreeArena& arena,
                              incr::IncrOptions options = {});

    /** The analyzed grammar (runs analyze). Pinned for this lifetime. */
    const sem::Grammar& grammar();

    /** Root interface id (runs analyze). */
    sem::InterfaceId rootInterface();

    /** This problem's content-addressed key (runs analyze). */
    const service::ProblemKey& problemKey();

    /**
     * The symbolic skeleton the schedule applies to: the given one, or
     * the auto-tuner's winner (requires a successful synthesize).
     */
    const sched::Skeleton& skeleton();

  private:
    obs::Telemetry& telemetry()
    {
        return options_.telemetry != nullptr ? *options_.telemetry
                                             : obs::Telemetry::nil();
    }

    /** Decode a payload into @p artifact; false on version skew. */
    bool materialize(const std::string& payload, SynthArtifact& artifact);

    /** Request exec knobs with pipeline defaults (telemetry) applied. */
    runtime::ExecOptions resolveExecOptions(const ExecuteRequest& request);

    /** Export one execution's stats as telemetry counters. */
    void exportExecCounters(const runtime::RuntimeStats& stats,
                            uint64_t nodes, double executeSeconds);

    /**
     * Run the native module over @p view when the configured tier
     * resolves one; false = caller executes bytecode. On success fills
     * @p stats with the native-path counters (nodeVisits = node count;
     * rule-level counters are not tracked natively).
     */
    bool tryNativeExecute(const runtime::ArenaView& view,
                          const ExecuteRequest& request,
                          runtime::RuntimeStats& stats);

    SynthArtifact runSynthesis();

    std::string grammarSrc_;
    std::string traversalSrc_;
    PipelineOptions options_;

    std::optional<ParseArtifact> parsed_;
    std::unique_ptr<sem::Grammar> grammar_; ///< heap-pinned: artifacts point in
    std::optional<AnalyzeArtifact> analyzed_;
    std::optional<sched::Skeleton> skeleton_;
    bool cacheChecked_ = false; ///< one ScheduleCache::get per run
    std::optional<SynthArtifact> synth_;
    std::optional<PlanArtifact> plan_;
    std::optional<runtime::Program> program_;
    std::optional<incr::IncrPlan> incrPlan_;
    std::optional<NativeArtifact> native_[2]; ///< by codegen::NativeForm
};

} // namespace hecate::pipeline
