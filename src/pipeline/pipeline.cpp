#include "pipeline/pipeline.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/timer.hpp"

namespace hecate::pipeline {

namespace {

/// Payload markers: what kind of skeleton the cached schedule is for.
constexpr const char* kGivenMarker = "given";
constexpr const char* kAutoMarker = "auto";

std::string
makePayload(bool autoMode, synth::SkeletonStyle style,
            const sched::Skeleton& skeleton, const sched::Schedule& schedule)
{
    std::string payload;
    if (autoMode) {
        payload = std::string(kAutoMarker) + " " +
                  std::to_string(static_cast<int>(style)) + "\n";
    } else {
        payload = std::string(kGivenMarker) + "\n";
    }
    payload += service::encodePortableSchedule(skeleton, schedule);
    return payload;
}

} // namespace

const char*
provenanceName(Provenance provenance)
{
    switch (provenance) {
      case Provenance::CacheHit:
        return "cache";
      case Provenance::JoinedInFlight:
        return "joined";
      case Provenance::FreshRun:
        return "fresh";
    }
    return "?";
}

synth::Engine
parseEngineName(const std::string& name)
{
    if (name == "ilp")
        return synth::Engine::DomainSpecificIlp;
    if (name == "sat")
        return synth::Engine::GeneralPurposeSat;
    userError("unknown engine '" + name + "' (expected 'ilp' or 'sat')");
}

const grammars::Benchmark*
findBuiltin(const std::string& name)
{
    if (name == "binarytree")
        return &grammars::binaryTree();
    if (name == "fmm")
        return &grammars::fmm();
    if (name == "piecewise")
        return &grammars::piecewise();
    if (name == "ast")
        return &grammars::astBench();
    if (name == "rendertree")
        return &grammars::renderTree();
    if (name == "cssfloat")
        return &grammars::cssFloat();
    if (name == "cssmargin")
        return &grammars::cssMargin();
    if (name == "cssfull")
        return &grammars::cssFull();
    return nullptr;
}

std::string
readTextFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        userError("cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

GrammarSource
resolveGrammarArg(const std::string& arg)
{
    GrammarSource source;
    if (arg.rfind("builtin:", 0) == 0) {
        const grammars::Benchmark* bench = findBuiltin(arg.substr(8));
        if (bench == nullptr)
            userError("unknown builtin grammar '" + arg + "'");
        source.source = bench->source;
        source.rootInterface = bench->rootInterface;
    } else {
        source.source = readTextFile(arg);
    }
    return source;
}

Pipeline::Pipeline(std::string grammarSrc, std::string traversalSrc,
                   PipelineOptions options)
    : grammarSrc_(std::move(grammarSrc)),
      traversalSrc_(std::move(traversalSrc)), options_(std::move(options))
{
}

Pipeline::Pipeline(const grammars::Benchmark& benchmark,
                   std::string traversalSrc, PipelineOptions options)
    : grammarSrc_(benchmark.source), traversalSrc_(std::move(traversalSrc)),
      options_(std::move(options))
{
    if (options_.rootInterface.empty())
        options_.rootInterface = benchmark.rootInterface;
}

const ParseArtifact&
Pipeline::parse()
{
    if (parsed_.has_value())
        return *parsed_;
    obs::Span stage = telemetry().span("parse", "stage");
    ParseArtifact artifact;
    artifact.grammarAst = lang::parseGrammar(grammarSrc_);
    if (!traversalSrc_.empty())
        artifact.traversalAst = lang::parseTraversal(traversalSrc_);
    parsed_.emplace(std::move(artifact));
    return *parsed_;
}

const AnalyzeArtifact&
Pipeline::analyze()
{
    if (analyzed_.has_value())
        return *analyzed_;
    parse();
    ParseArtifact& parsed = *parsed_;
    obs::Span stage = telemetry().span("analyze", "stage");

    // The grammar is heap-pinned: Skeleton and Program keep pointers
    // into it, so it must not move for the Pipeline's lifetime. It
    // takes ownership of the parse artifact's rule expressions, so the
    // grammar AST is consumed here.
    grammar_ = std::make_unique<sem::Grammar>(
        sem::Grammar::analyze(std::move(parsed.grammarAst)));

    AnalyzeArtifact artifact;
    artifact.root = options_.rootInterface.empty()
                        ? grammar_->cls(0).iface
                        : grammar_->findInterface(options_.rootInterface);
    if (artifact.root == sem::kInvalidId) {
        userError("unknown root interface '" + options_.rootInterface + "'");
    }

    artifact.autoMode = !parsed.traversalAst.has_value();
    if (artifact.autoMode) {
        artifact.key = service::makeAutoProblemKey(*grammar_, artifact.root,
                                                   options_.config);
    } else {
        skeleton_.emplace(sched::Skeleton::resolve(
            *grammar_, parsed.traversalAst->clone()));
        artifact.key = service::makeProblemKey(*skeleton_, artifact.root,
                                               options_.config);
    }
    analyzed_.emplace(std::move(artifact));
    return *analyzed_;
}

bool
Pipeline::materialize(const std::string& payload, SynthArtifact& artifact)
{
    size_t newline = payload.find('\n');
    if (newline == std::string::npos)
        return false;
    std::string header = payload.substr(0, newline);
    std::string blob = payload.substr(newline + 1);

    if (header.rfind(kAutoMarker, 0) == 0 &&
        header.size() > std::string(kAutoMarker).size()) {
        int style = std::atoi(header.c_str() + 5);
        if (style < 0 ||
            style > static_cast<int>(synth::SkeletonStyle::DoublePost)) {
            return false;
        }
        artifact.autoTuned = true;
        artifact.style = static_cast<synth::SkeletonStyle>(style);
        skeleton_.emplace(sched::Skeleton::resolve(
            *grammar_, synth::makeSkeleton(*grammar_, artifact.style)));
    } else if (header != kGivenMarker || !skeleton_.has_value()) {
        return false;
    }

    std::optional<sched::Schedule> schedule =
        service::decodePortableSchedule(*skeleton_, blob);
    if (!schedule.has_value())
        return false;
    artifact.concreteTraversal =
        lang::printTraversal(schedule->toConcreteTraversal(*skeleton_));
    artifact.schedule = std::move(schedule);
    artifact.payload = payload;
    artifact.ok = true;
    return true;
}

const SynthArtifact*
Pipeline::synthesizeFromCache()
{
    if (synth_.has_value())
        return synth_->ok ? &*synth_ : nullptr;
    const AnalyzeArtifact& analyzed = analyze();
    if (options_.cache == nullptr)
        return nullptr;
    obs::Span stage = telemetry().span("synthesize", "stage");
    Timer timer;
    cacheChecked_ = true;
    std::optional<std::string> blob = options_.cache->get(analyzed.key);
    if (!blob.has_value())
        return nullptr;
    SynthArtifact artifact;
    if (!materialize(*blob, artifact)) {
        // Undecodable entry (version skew): treat as a miss.
        return nullptr;
    }
    artifact.provenance = Provenance::CacheHit;
    artifact.seconds = timer.seconds();
    synth_.emplace(std::move(artifact));
    return &*synth_;
}

SynthArtifact
Pipeline::runSynthesis()
{
    const AnalyzeArtifact& analyzed = analyze();
    SynthArtifact artifact;
    artifact.provenance = Provenance::FreshRun;
    if (analyzed.autoMode) {
        synth::AutotuneResult tuned = synth::autotune(
            *grammar_, analyzed.root, options_.config, telemetry());
        artifact.cegisIterations = tuned.lastSynthesis.cegisIterations;
        artifact.verifiedTrees = tuned.lastSynthesis.verifiedTrees;
        artifact.verifyThreadsUsed = tuned.lastSynthesis.verifyThreadsUsed;
        artifact.autoTuned = true;
        artifact.skeletonsTried = tuned.skeletonsTried;
        if (!tuned.schedule.has_value()) {
            artifact.failure =
                "auto-tuning failed: " + tuned.lastSynthesis.failure;
            return artifact;
        }
        artifact.style = tuned.style;
        skeleton_ = std::move(tuned.skeleton);
        artifact.payload = makePayload(true, tuned.style, *skeleton_,
                                       *tuned.schedule);
        artifact.schedule = std::move(tuned.schedule);
    } else {
        synth::SynthesisResult result = synth::synthesize(
            *skeleton_, analyzed.root, {}, options_.config, telemetry());
        artifact.cegisIterations = result.cegisIterations;
        artifact.verifiedTrees = result.verifiedTrees;
        artifact.verifyThreadsUsed = result.verifyThreadsUsed;
        if (!result.schedule.has_value()) {
            artifact.failure = "synthesis failed: " + result.failure;
            return artifact;
        }
        artifact.payload =
            makePayload(false, synth::SkeletonStyle::PostOrder, *skeleton_,
                        *result.schedule);
        artifact.schedule = std::move(result.schedule);
    }
    artifact.concreteTraversal = lang::printTraversal(
        artifact.schedule->toConcreteTraversal(*skeleton_));
    artifact.ok = true;
    return artifact;
}

const SynthArtifact&
Pipeline::synthesize()
{
    if (synth_.has_value())
        return *synth_;
    const AnalyzeArtifact& analyzed = analyze();
    if (options_.cache != nullptr && !cacheChecked_) {
        if (const SynthArtifact* cached = synthesizeFromCache())
            return *cached;
    }
    obs::Span stage = telemetry().span("synthesize", "stage");
    Timer timer;
    SynthArtifact artifact = runSynthesis();
    if (artifact.ok && options_.cache != nullptr)
        options_.cache->put(analyzed.key, artifact.payload);
    artifact.seconds = timer.seconds();
    synth_.emplace(std::move(artifact));
    return *synth_;
}

const SynthArtifact&
Pipeline::adoptPayload(const std::string& payload)
{
    analyze();
    obs::Span stage = telemetry().span("synthesize", "stage");
    Timer timer;
    SynthArtifact artifact;
    artifact.provenance = Provenance::JoinedInFlight;
    if (!materialize(payload, artifact)) {
        artifact.ok = false;
        artifact.failure = "could not decode leader's schedule";
    }
    artifact.seconds = timer.seconds();
    synth_.emplace(std::move(artifact));
    return *synth_;
}

const PlanArtifact&
Pipeline::plan()
{
    if (plan_.has_value())
        return *plan_;
    const SynthArtifact& synth = synthesize();
    if (!synth.ok)
        userError(synth.failure);
    obs::Span stage = telemetry().span("plan", "stage");
    // Round-trip through the printed concrete form: the hole-free
    // traversal a user could save and re-run is exactly what executes.
    ast::TraversalDecl concrete =
        lang::parseTraversal(synth.concreteTraversal);
    sched::Skeleton resolved =
        sched::Skeleton::resolve(*grammar_, concrete.clone());
    plan_.emplace(std::move(concrete), std::move(resolved));
    return *plan_;
}

const runtime::Program&
Pipeline::compileProgram()
{
    if (program_.has_value())
        return *program_;
    const PlanArtifact& planned = plan();
    obs::Span stage = telemetry().span("compile", "stage");
    program_.emplace(
        runtime::Program::compile(planned.concrete, sched::Schedule{}));
    return *program_;
}

const incr::IncrPlan&
Pipeline::incrPlan()
{
    if (incrPlan_.has_value())
        return *incrPlan_;
    const runtime::Program& program = compileProgram();
    obs::Span stage = telemetry().span("incr-plan", "stage");
    incrPlan_.emplace(incr::IncrPlan::build(program));
    return *incrPlan_;
}

uint64_t
Pipeline::edit(runtime::TreeArena& arena, const std::vector<incr::Edit>& edits)
{
    checkInvariant(&arena.grammar() == grammar_.get(),
                   "Pipeline::edit: arena belongs to another grammar");
    obs::Span stage = telemetry().span("edit", "stage");
    Timer timer;
    for (const incr::Edit& e : edits)
        incr::applyEdit(arena, e);
    obs::Telemetry& sink = telemetry();
    sink.add("incr.edits", static_cast<double>(edits.size()));
    sink.add("incr.edit_seconds", timer.seconds());
    return edits.size();
}

incr::IncrStats
Pipeline::reexecute(runtime::TreeArena& arena, incr::IncrOptions options)
{
    checkInvariant(&arena.grammar() == grammar_.get(),
                   "Pipeline::reexecute: arena belongs to another grammar");
    const runtime::Program& program = compileProgram();
    const incr::IncrPlan& plan = incrPlan();
    obs::Span stage = telemetry().span("reexecute", "stage");
    if (options.telemetry == nullptr)
        options.telemetry = options_.telemetry;
    Timer timer;
    incr::IncrStats stats = incr::reexecute(program, plan, arena, options);
    const double seconds = timer.seconds();

    obs::Telemetry& sink = telemetry();
    sink.add("incr.reexecutes", 1.0);
    sink.add("incr.edits_consumed", static_cast<double>(stats.editsApplied));
    sink.add("incr.seeds", static_cast<double>(stats.seeds));
    sink.add("incr.virgin_nodes", static_cast<double>(stats.virginNodes));
    sink.add("incr.nodes_visited", static_cast<double>(stats.nodesVisited));
    sink.add("incr.rules_checked", static_cast<double>(stats.rulesChecked));
    sink.add("incr.rules_evaluated",
             static_cast<double>(stats.rulesEvaluated));
    sink.add("incr.cells_dirtied", static_cast<double>(stats.cellsDirtied));
    sink.add("incr.level_waves", static_cast<double>(stats.levelWaves));
    sink.add("incr.tasks_spawned", static_cast<double>(stats.tasksSpawned));
    sink.add(stats.usedWave ? "incr.wave_runs" : "incr.stack_runs", 1.0);
    if (seconds > 0.0) {
        sink.set("incr.rules_per_sec",
                 static_cast<double>(stats.rulesChecked) / seconds);
    }
    return stats;
}

NativeArtifact
Pipeline::compileNative(runtime::SweepStrategy strategy)
{
    const runtime::Program& program = compileProgram();
    codegen::NativeForm form = codegen::resolveNativeForm(program, strategy);
    std::optional<NativeArtifact>& memo =
        native_[static_cast<size_t>(form)];
    if (memo.has_value())
        return *memo;

    NativeArtifact artifact;
    if (options_.nativeTier == nullptr) {
        artifact.failure = "native tier not configured";
        return artifact;
    }
    obs::Span stage = telemetry().span("compile_native", "stage");
    Timer timer;
    const std::string& payload = synthesize().payload;
    if (options_.tier == service::ExecTier::Native) {
        std::string error;
        artifact.module = options_.nativeTier->acquire(
            problemKey(), payload, plan().concrete, program, strategy,
            telemetry(), &error);
        if (artifact.module == nullptr)
            artifact.failure = error;
    } else {
        artifact.module = options_.nativeTier->poll(
            problemKey(), payload, plan().concrete, program, strategy);
        if (artifact.module == nullptr)
            artifact.failure = "native module not resolved yet";
    }
    artifact.ok = artifact.module != nullptr;
    artifact.seconds = timer.seconds();
    if (!artifact.ok)
        return artifact; // misses re-poll; only successes memoize
    memo.emplace(artifact);
    return artifact;
}

bool
Pipeline::tryNativeExecute(const runtime::ArenaView& view,
                           const ExecuteRequest& request,
                           runtime::RuntimeStats& stats)
{
    if (options_.tier == service::ExecTier::Bytecode ||
        options_.nativeTier == nullptr)
        return false;
    NativeArtifact native = compileNative(request.exec.strategy);
    obs::Telemetry& sink = telemetry();
    if (!native.ok) {
        sink.add("native.fallback");
        return false;
    }
    native.module->execute(view);
    stats = runtime::RuntimeStats{};
    stats.nodeVisits = view.size;
    sink.add("native.exec");
    return true;
}

/**
 * Fill in the per-execution knobs a request left defaulted (the
 * executor's telemetry sink follows the pipeline's) and export one
 * execution's counters.
 */
runtime::ExecOptions
Pipeline::resolveExecOptions(const ExecuteRequest& request)
{
    runtime::ExecOptions exec = request.exec;
    if (exec.telemetry == nullptr)
        exec.telemetry = options_.telemetry;
    return exec;
}

void
Pipeline::exportExecCounters(const runtime::RuntimeStats& stats,
                             uint64_t nodes, double executeSeconds)
{
    obs::Telemetry& sink = telemetry();
    sink.add("exec.node_visits", static_cast<double>(stats.nodeVisits));
    sink.add("exec.rules_evaluated",
             static_cast<double>(stats.rulesEvaluated));
    sink.add("exec.parallel_regions",
             static_cast<double>(stats.parallelRegions));
    sink.add("exec.tasks_spawned", static_cast<double>(stats.tasksSpawned));
    sink.add("exec.help_join_runs", static_cast<double>(stats.helpJoinRuns));
    sink.add("exec.level_waves", static_cast<double>(stats.levelWaves));
    sink.add("exec.segment_kernels",
             static_cast<double>(stats.segmentKernels));
    sink.add("exec.tiles", static_cast<double>(stats.tilesExecuted));
    sink.add("exec.tile_steals", static_cast<double>(stats.tileSteals));
    // Strip-engine counters: register-form strip loops run, predicated
    // lane-ops applied, and nodes the interpreter fallback caught.
    sink.add("exec.strips", static_cast<double>(stats.stripsRun));
    sink.add("exec.pred_ops", static_cast<double>(stats.predicatedOps));
    sink.add("exec.fallback_nodes",
             static_cast<double>(stats.fallbackNodes));
    // Strategy-selection provenance: which strategy actually ran and
    // why Auto (or an explicit request) picked it.
    sink.add(std::string("exec.strategy.") +
                 runtime::sweepStrategyName(stats.strategy),
             1.0);
    sink.add(std::string("exec.select.") +
                 runtime::strategyReasonName(stats.selection),
             1.0);
    if (executeSeconds > 0.0) {
        sink.set("exec.nodes_per_sec",
                 static_cast<double>(nodes) / executeSeconds);
    }
}

ExecuteArtifact
Pipeline::execute(const ExecuteRequest& request)
{
    if (request.batchCount != 1)
        userError("Pipeline::execute: batchCount must be 1 (use "
                  "executeForest for batches)");
    const runtime::Program& program = compileProgram();
    obs::Span stage = telemetry().span("execute", "stage");

    Timer generate_timer;
    obs::Span generate = telemetry().span("arena.generate");
    runtime::TreeArena arena = runtime::TreeArena::generate(
        *grammar_, rootInterface(), request.gen);
    generate.end();
    double generate_seconds = generate_timer.seconds();

    Timer execute_timer;
    obs::Span run = telemetry().span("arena.execute");
    runtime::RuntimeStats stats;
    if (!tryNativeExecute(arena.view(), request, stats))
        stats = runtime::execute(program, arena, resolveExecOptions(request));
    run.end();

    const uint64_t nodes = arena.size();
    ExecuteArtifact artifact(std::move(arena), stats);
    artifact.generateSeconds = generate_seconds;
    artifact.executeSeconds = execute_timer.seconds();
    exportExecCounters(stats, nodes, artifact.executeSeconds);
    return artifact;
}

ExecuteArtifact
Pipeline::executeTree(const tree::Tree& tree,
                      const runtime::ExecOptions& execOptions)
{
    const runtime::Program& program = compileProgram();
    if (&tree.grammar() != grammar_.get())
        userError("Pipeline::executeTree: tree was built against a "
                  "different grammar object");
    obs::Span stage = telemetry().span("execute", "stage");

    Timer generate_timer;
    obs::Span flatten = telemetry().span("arena.from_tree");
    runtime::TreeArena arena = runtime::TreeArena::fromTree(tree);
    flatten.end();
    double generate_seconds = generate_timer.seconds();

    ExecuteRequest request;
    request.exec = execOptions;
    Timer execute_timer;
    obs::Span run = telemetry().span("arena.execute");
    runtime::RuntimeStats stats;
    if (!tryNativeExecute(arena.view(), request, stats))
        stats = runtime::execute(program, arena, resolveExecOptions(request));
    run.end();

    const uint64_t nodes = arena.size();
    ExecuteArtifact artifact(std::move(arena), stats);
    artifact.generateSeconds = generate_seconds;
    artifact.executeSeconds = execute_timer.seconds();
    exportExecCounters(stats, nodes, artifact.executeSeconds);
    return artifact;
}

ForestExecuteArtifact
Pipeline::executeForest(const ExecuteRequest& request)
{
    if (request.batchCount == 0)
        userError("Pipeline::executeForest: batchCount must be positive");
    const runtime::Program& program = compileProgram();
    obs::Span stage = telemetry().span("execute", "stage");

    Timer generate_timer;
    obs::Span generate = telemetry().span("forest.generate");
    runtime::ForestArena forest = runtime::ForestArena::generate(
        *grammar_, rootInterface(), request.gen, request.batchCount);
    generate.end();
    double generate_seconds = generate_timer.seconds();

    Timer execute_timer;
    obs::Span run = telemetry().span("forest.execute");
    runtime::RuntimeStats stats;
    if (!tryNativeExecute(forest.view(), request, stats))
        stats = runtime::execute(program, forest, resolveExecOptions(request));
    run.end();

    const uint64_t nodes = forest.size();
    ForestExecuteArtifact artifact(std::move(forest), stats);
    artifact.generateSeconds = generate_seconds;
    artifact.executeSeconds = execute_timer.seconds();
    exportExecCounters(stats, nodes, artifact.executeSeconds);
    telemetry().add("exec.batch_trees",
                    static_cast<double>(request.batchCount));
    return artifact;
}

const sem::Grammar&
Pipeline::grammar()
{
    analyze();
    return *grammar_;
}

sem::InterfaceId
Pipeline::rootInterface()
{
    return analyze().root;
}

const service::ProblemKey&
Pipeline::problemKey()
{
    return analyze().key;
}

const sched::Skeleton&
Pipeline::skeleton()
{
    analyze();
    if (!skeleton_.has_value()) {
        const SynthArtifact& synth = synthesize();
        if (!synth.ok)
            userError(synth.failure);
        checkInvariant(skeleton_.has_value(),
                       "Pipeline::skeleton: synthesis left no skeleton");
    }
    return *skeleton_;
}

} // namespace hecate::pipeline
