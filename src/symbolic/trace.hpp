#pragma once

/**
 * @file
 * The domain-specific trace language L_r (paper §5.1, Table 1).
 *
 * The domain-specific interpreter does not assert readiness conditions
 * directly; it transpiles every traversal statement into a guarded
 * trace statement
 *
 *     (assume sigma(a, iota) (read n.a)* (write n.a))
 *
 * which records read/write actions against fully abstract attribute
 * contents. The trace program disentangles dependencies from the time
 * domain: the ILP encoder (symbolic/ilp_encoder) consumes it together
 * with the plan's happens-before relation and never materializes time
 * steps.
 */

#include <string>
#include <vector>

#include "sched/visit_plan.hpp"
#include "symbolic/sigma.hpp"

namespace hecate::symbolic {

/** One guarded trace statement of L_r. */
struct TraceStmt {
    /** Guard: sigma entry index, or kFixed for eval statements. */
    static constexpr uint32_t kFixed = sem::kInvalidId;

    uint32_t sigmaEntry = kFixed;          ///< guard (assume sigma(a,iota))
    sched::InstId inst = sem::kInvalidId;  ///< time position (for ≺ queries)
    sem::RuleId rule = sem::kInvalidId;    ///< rule whose actions these are
    std::vector<sched::Location> reads;    ///< (read n.a) actions
    bool hasWrite = false;
    sched::Location write;                 ///< (write n.a) action
};

/** A transpiled trace program for one plan. */
struct TraceProgram {
    std::vector<TraceStmt> stmts;

    /** Total number of read/write actions (a compactness metric). */
    size_t actionCount() const;
};

/**
 * Syntax-directed transpilation of a plan into L_r (§5.1): every slot
 * instance yields one guarded statement per candidate rule; every eval
 * instance yields one fixed statement.
 */
TraceProgram buildTrace(const sched::VisitPlan& plan,
                        const SigmaSpace& sigma);

/** Render a statement like the paper:
 *  "(assume s(Inner.h, i2) (read n1.h0) (read n3.h1) (write n1.h))". */
std::string printTraceStmt(const TraceStmt& stmt,
                           const sched::VisitPlan& plan);

} // namespace hecate::symbolic
