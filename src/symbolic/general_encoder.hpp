#pragma once

/**
 * @file
 * General-purpose symbolic compilation (paper §4.2, HecateG).
 *
 * A faithful symbolic interpretation of the traversal: the interpreter
 * walks the plan's fork-join task tree carrying a symbolic ready-state
 * (one boolean formula per location, over the sigma assignment
 * variables). Each slot expands into a `choose` over its candidates;
 * every candidate contributes the assertion
 *
 *     sigma(a, iota) => ready(deps) AND NOT ready(lhs)
 *
 * evaluated against the state *at that time step*, after which the
 * state is updated — exactly the time-domain encoding whose symbolic
 * state count grows along the execution (Fig. 9, left). The resulting
 * formula goes through Tseitin CNF into the CDCL SAT solver.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"
#include "tree/tree.hpp"

namespace hecate::symbolic {

/** Measurements of one general-purpose synthesis query. */
struct GeneralStats {
    size_t sigmaVars = 0;
    size_t formulaNodes = 0; ///< unique DAG nodes (after hash-consing)
    size_t formulaOps = 0;   ///< construction ops (cache hits included)
    double expandedStates = 0.0; ///< the Fig. 9 symbolic-state count
    size_t cnfVars = 0;
    size_t cnfClauses = 0;
    uint64_t satConflicts = 0;
    uint64_t satDecisions = 0;
    double encodeSeconds = 0.0;
    double solveSeconds = 0.0;
};

/**
 * Synthesize a schedule for @p skeleton consistent with every tree in
 * @p trees using the general-purpose encoding. Returns std::nullopt
 * when the constraints are unsatisfiable.
 *
 * @param statesPerStep when non-null, receives the cumulative
 *        tree-expanded symbolic state count after each executed
 *        instance (the Fig. 9 series; saturates near SIZE_MAX).
 */
std::optional<sched::Schedule>
synthesizeGeneral(const sched::Skeleton& skeleton,
                  const std::vector<const tree::Tree*>& trees,
                  GeneralStats* stats = nullptr,
                  std::vector<size_t>* statesPerStep = nullptr);

} // namespace hecate::symbolic
