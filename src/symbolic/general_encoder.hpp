#pragma once

/**
 * @file
 * General-purpose symbolic compilation (paper §4.2, HecateG).
 *
 * A faithful symbolic interpretation of the traversal: the interpreter
 * walks the plan's fork-join task tree carrying a symbolic ready-state
 * (one boolean formula per location, over the sigma assignment
 * variables). Each slot expands into a `choose` over its candidates;
 * every candidate contributes the assertion
 *
 *     sigma(a, iota) => ready(deps) AND NOT ready(lhs)
 *
 * evaluated against the state *at that time step*, after which the
 * state is updated — exactly the time-domain encoding whose symbolic
 * state count grows along the execution (Fig. 9, left). The resulting
 * formula goes through Tseitin CNF into the CDCL SAT solver.
 *
 * Measurements flow into an obs::Telemetry sink instead of a nullable
 * out-param: spans "encode"/"solve" (category "solver") time each
 * call, and counters under "sat." record the encoding size —
 * sat.sigma_vars, sat.formula_nodes (unique DAG nodes after
 * hash-consing), sat.formula_ops, sat.expanded_states (the Fig. 9
 * symbolic-state count), sat.cnf_vars, sat.cnf_clauses,
 * sat.conflicts, sat.decisions.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/telemetry.hpp"
#include "sched/schedule.hpp"
#include "tree/tree.hpp"

namespace hecate::symbolic {

/**
 * Synthesize a schedule for @p skeleton consistent with every tree in
 * @p trees using the general-purpose encoding. Returns std::nullopt
 * when the constraints are unsatisfiable.
 *
 * @param telemetry sink for encode/solve spans and "sat.*" counters.
 * @param statesPerStep when non-null, receives the cumulative
 *        tree-expanded symbolic state count after each executed
 *        instance (the Fig. 9 series; saturates near SIZE_MAX).
 */
std::optional<sched::Schedule>
synthesizeGeneral(const sched::Skeleton& skeleton,
                  const std::vector<const tree::Tree*>& trees,
                  obs::Telemetry& telemetry = obs::Telemetry::nil(),
                  std::vector<size_t>* statesPerStep = nullptr);

} // namespace hecate::symbolic
