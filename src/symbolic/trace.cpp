#include "symbolic/trace.hpp"

#include <sstream>

namespace hecate::symbolic {

size_t
TraceProgram::actionCount() const
{
    size_t count = 0;
    for (const TraceStmt& stmt : stmts)
        count += stmt.reads.size() + (stmt.hasWrite ? 1 : 0);
    return count;
}

TraceProgram
buildTrace(const sched::VisitPlan& plan, const SigmaSpace& sigma)
{
    TraceProgram program;
    const sched::Skeleton& skeleton = plan.skeleton();

    for (const sched::Instance& inst : plan.instances()) {
        if (inst.kind == sched::Instance::Kind::Eval) {
            TraceStmt stmt;
            stmt.sigmaEntry = TraceStmt::kFixed;
            stmt.inst = inst.id;
            stmt.rule = inst.rule;
            stmt.reads = plan.readsFor(inst, inst.rule);
            if (inst.writesHere()) {
                auto write = plan.writeFor(inst, inst.rule);
                if (write.has_value()) {
                    stmt.hasWrite = true;
                    stmt.write = *write;
                }
            }
            program.stmts.push_back(std::move(stmt));
            continue;
        }
        for (sem::RuleId rule : skeleton.slot(inst.slot).candidates) {
            TraceStmt stmt;
            stmt.sigmaEntry = sigma.indexOf(inst.slot, rule);
            checkInvariant(stmt.sigmaEntry != sem::kInvalidId,
                           "buildTrace: candidate without sigma entry");
            stmt.inst = inst.id;
            stmt.rule = rule;
            stmt.reads = plan.readsFor(inst, rule);
            if (inst.writesHere()) {
                auto write = plan.writeFor(inst, rule);
                if (write.has_value()) {
                    stmt.hasWrite = true;
                    stmt.write = *write;
                }
            }
            program.stmts.push_back(std::move(stmt));
        }
    }
    return program;
}

std::string
printTraceStmt(const TraceStmt& stmt, const sched::VisitPlan& plan)
{
    const sem::Grammar& grammar = plan.skeleton().grammar();

    auto locStr = [&](sched::Location loc) {
        const tree::Node& node = plan.tree().node(loc.node);
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        return "n" + std::to_string(loc.node) + "." +
               iface.attrs[loc.attr].name;
    };

    std::ostringstream os;
    os << "(";
    if (stmt.sigmaEntry == TraceStmt::kFixed) {
        os << "assume true";
    } else {
        const sched::Instance& inst = plan.instances()[stmt.inst];
        os << "assume s(" << grammar.ruleName(stmt.rule) << ", i"
           << inst.slot << ")";
    }
    for (sched::Location loc : stmt.reads)
        os << " (read " << locStr(loc) << ")";
    if (stmt.hasWrite)
        os << " (write " << locStr(stmt.write) << ")";
    os << ")";
    return os.str();
}

} // namespace hecate::symbolic
