#include "symbolic/ilp_encoder.hpp"

#include <algorithm>

#include "sched/visit_plan.hpp"
#include "solver/ilp.hpp"
#include "symbolic/sigma.hpp"
#include "symbolic/trace.hpp"

namespace hecate::symbolic {

namespace {

/**
 * Encodes one plan's trace program into ILP constraints. Counts
 * accumulate locally and flush to the telemetry sink once per run() —
 * the encode loop is the synthesis hot path and must not take the
 * sink's lock per constraint.
 */
class IlpEncoder {
  public:
    IlpEncoder(const sched::VisitPlan& plan, const SigmaSpace& sigma,
               solver::IlpSolver& ilp, obs::Telemetry& telemetry,
               std::vector<size_t>* statesPerStep)
        : plan_(plan), sigma_(sigma), ilp_(ilp), telemetry_(telemetry),
          statesPerStep_(statesPerStep)
    {
    }

    /** Returns false when a fixed read is statically unsatisfiable. */
    bool run()
    {
        TraceProgram program = buildTrace(plan_, sigma_);
        bool ok = true;
        for (const TraceStmt& stmt : program.stmts) {
            if (!encodeStmt(stmt)) {
                ok = false;
                break;
            }
            if (statesPerStep_ != nullptr)
                statesPerStep_->push_back(cumulativeTerms_);
        }
        telemetry_.add("ilp.trace_stmts",
                       static_cast<double>(program.stmts.size()));
        telemetry_.add("ilp.constraints",
                       static_cast<double>(constraints_));
        telemetry_.add("ilp.constraint_terms",
                       static_cast<double>(cumulativeTerms_));
        return ok;
    }

  private:
    bool isInput(sched::Location loc) const
    {
        const sem::Grammar& grammar = plan_.skeleton().grammar();
        const tree::Node& node = plan_.tree().node(loc.node);
        return grammar.iface(grammar.cls(node.cls).iface).isInput(loc.attr);
    }

    bool encodeStmt(const TraceStmt& stmt)
    {
        for (sched::Location loc : stmt.reads) {
            if (isInput(loc))
                continue;
            if (!encodeRead(stmt, loc))
                return false;
        }
        // Writes need no constraint: the rule (exactly-one) constraint
        // makes every location's writer guard sum to exactly one.
        return true;
    }

    bool encodeRead(const TraceStmt& stmt, sched::Location loc)
    {
        std::vector<solver::LinTerm> writers;
        for (const sched::Writer& w : plan_.writersOf(loc)) {
            if (!plan_.happensBefore(w.inst, stmt.inst))
                continue;
            if (w.fixed) {
                // A preceding unconditional write satisfies the read.
                return true;
            }
            const sched::Instance& wi = plan_.instances()[w.inst];
            uint32_t entry = sigma_.indexOf(wi.slot, w.rule);
            if (entry != sem::kInvalidId)
                writers.push_back({1, entry});
        }

        if (stmt.sigmaEntry == TraceStmt::kFixed) {
            if (writers.empty())
                return false; // eval reads a value nothing can produce
            addConstraint(std::move(writers), /*guarded=*/false);
        } else {
            // sigma(a, iota) <= sum of preceding writer guards.
            writers.push_back({-1, stmt.sigmaEntry});
            addConstraint(std::move(writers), /*guarded=*/true);
        }
        return true;
    }

    void addConstraint(std::vector<solver::LinTerm> terms, bool guarded)
    {
        cumulativeTerms_ += terms.size();
        ++constraints_;
        // guarded: sum(writers) - sigma >= 0; fixed: sum(writers) >= 1.
        ilp_.addGe(std::move(terms), guarded ? 0 : 1);
    }

    const sched::VisitPlan& plan_;
    const SigmaSpace& sigma_;
    solver::IlpSolver& ilp_;
    obs::Telemetry& telemetry_;
    std::vector<size_t>* statesPerStep_;
    size_t cumulativeTerms_ = 0;
    size_t constraints_ = 0;
};

} // namespace

bool
addValidityConstraints(const sched::Skeleton& skeleton,
                       const SigmaSpace& sigma, solver::IlpSolver& ilp)
{
    for (sched::SlotId s = 0; s < skeleton.slotCount(); ++s) {
        std::vector<solver::LinTerm> terms;
        for (uint32_t i = sigma.slotRange[s].first;
             i < sigma.slotRange[s].second; ++i) {
            terms.push_back({1, i});
        }
        if (!terms.empty())
            ilp.addLe(std::move(terms), 1); // slot constraint
    }
    const sem::Grammar& grammar = skeleton.grammar();
    for (sem::RuleId rule = 0; rule < grammar.rules().size(); ++rule) {
        const auto& fixed = skeleton.fixedRules(grammar.rule(rule).cls);
        if (std::find(fixed.begin(), fixed.end(), rule) != fixed.end())
            continue;
        std::vector<solver::LinTerm> terms;
        for (uint32_t entry : sigma.ruleEntries[rule])
            terms.push_back({1, entry});
        if (terms.empty())
            return false; // rule cannot be scheduled anywhere
        ilp.addEq(std::move(terms), 1); // rule constraint
    }
    return true;
}

bool
encodeTraceConstraints(const sched::VisitPlan& plan, const SigmaSpace& sigma,
                       solver::IlpSolver& ilp, obs::Telemetry& telemetry,
                       std::vector<size_t>* statesPerStep)
{
    IlpEncoder encoder(plan, sigma, ilp, telemetry, statesPerStep);
    return encoder.run();
}

std::optional<sched::Schedule>
synthesizeIlp(const sched::Skeleton& skeleton,
              const std::vector<const tree::Tree*>& trees,
              obs::Telemetry& telemetry, std::vector<size_t>* statesPerStep)
{
    SigmaSpace sigma = SigmaSpace::build(skeleton);
    solver::IlpSolver ilp;
    bool feasible;
    {
        obs::Span encode = telemetry.span("encode", "solver");
        for (size_t i = 0; i < sigma.size(); ++i)
            ilp.addVar();
        feasible = addValidityConstraints(skeleton, sigma, ilp);
        if (feasible) {
            for (const tree::Tree* tree : trees) {
                sched::VisitPlan plan(skeleton, *tree);
                if (!encodeTraceConstraints(plan, sigma, ilp, telemetry,
                                            statesPerStep)) {
                    feasible = false;
                    break;
                }
            }
        }
    }

    bool solved;
    {
        obs::Span solve = telemetry.span("solve", "solver");
        solved = feasible && ilp.solve() == solver::IlpResult::Feasible;
    }

    telemetry.set("ilp.sigma_vars", static_cast<double>(sigma.size()));
    telemetry.add("ilp.branch_nodes",
                  static_cast<double>(ilp.stats().branchNodes));
    if (!solved)
        return std::nullopt;

    std::vector<bool> values(sigma.size());
    for (size_t i = 0; i < sigma.size(); ++i)
        values[i] = ilp.value(static_cast<uint32_t>(i)) != 0;
    return sigma.decode(values, skeleton);
}

} // namespace hecate::symbolic
