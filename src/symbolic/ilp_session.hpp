#pragma once

/**
 * @file
 * IlpSession: the domain-specific ILP encoding made incremental across
 * CEGIS rounds.
 *
 * The one-shot synthesizeIlp rebuilds everything per round — sigma
 * space, validity constraints, and one constraint block per accumulated
 * example — so round N pays for all N examples again. A session keeps
 * the sigma-variable space and the solver (with every previously
 * encoded constraint block) alive, so round N encodes only the one new
 * counterexample and re-solves. The solve is warm-started by
 * phase-saving: the previous round's feasible assignment is installed
 * as branch-value hints, and the search dives straight back to it,
 * branching only where the new example's constraints force a repair.
 *
 * Both paths share addValidityConstraints/encodeTraceConstraints, so a
 * session asserts the byte-identical constraint system as the
 * from-scratch encoder over the same examples — the differential tests
 * in tests/test_cegis_hotpath.cpp rely on this.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/visit_plan.hpp"
#include "solver/ilp.hpp"
#include "symbolic/ilp_encoder.hpp"
#include "symbolic/sigma.hpp"

namespace hecate::symbolic {

/** Persistent incremental encoding state for one skeleton. */
class IlpSession {
  public:
    explicit IlpSession(const sched::Skeleton& skeleton);

    IlpSession(const IlpSession&) = delete;
    IlpSession& operator=(const IlpSession&) = delete;

    /**
     * Encode one more example's constraint block into the persistent
     * solver. Encode time (span "encode", category "solver") and the
     * "ilp.*" size counters accumulate into @p telemetry.
     */
    void addExample(const sched::VisitPlan& plan,
                    obs::Telemetry& telemetry = obs::Telemetry::nil());

    /**
     * Solve the accumulated system, warm-started from the previous
     * feasible assignment. Returns std::nullopt when infeasible (which
     * is permanent: constraints only ever accumulate). Solve time
     * (span "solve") and ilp.branch_nodes / ilp.hinted_branches /
     * ilp.warm_restarts accumulate into @p telemetry.
     */
    std::optional<sched::Schedule>
    solve(obs::Telemetry& telemetry = obs::Telemetry::nil());

    size_t exampleCount() const { return examples_; }
    size_t constraintCount() const { return ilp_.constraintCount(); }
    bool feasible() const { return feasible_; }
    const SigmaSpace& sigma() const { return sigma_; }

    /** Disable/enable phase-saving warm starts (on by default). */
    void setWarmStart(bool enabled) { warmStart_ = enabled; }

    /**
     * Node budget for a warm-started solve before falling back to the
     * default branch order: base + growth * (nodes of the previous
     * successful solve). Exceeding it means the hints are misleading
     * the search, not that the system is hard — the cold solve that
     * follows explores exactly the from-scratch branch order, and warm
     * starts stay off for the rest of the session.
     */
    static constexpr uint64_t kWarmBudgetBase = 512;
    static constexpr uint64_t kWarmBudgetGrowth = 4;

  private:
    const sched::Skeleton* skeleton_;
    SigmaSpace sigma_;
    solver::IlpSolver ilp_;
    std::vector<int8_t> hints_; ///< previous feasible assignment
    bool feasible_ = true;      ///< false once statically/solver-infeasible
    bool warmStart_ = true;
    uint64_t lastSolveNodes_ = 0; ///< scales the next warm budget
    size_t examples_ = 0;
};

} // namespace hecate::symbolic
