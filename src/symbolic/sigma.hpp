#pragma once

/**
 * @file
 * The sigma assignment-variable space shared by both symbolic
 * compilation strategies. sigma(a, iota) — "rule a is scheduled at slot
 * iota" (§4.2) — is flattened into a dense entry list so a SAT model and
 * an ILP solution decode into a Schedule identically.
 */

#include <vector>

#include "sched/schedule.hpp"

namespace hecate::symbolic {

/** Dense index space of sigma(rule, slot) variables. */
struct SigmaSpace {
    /** One boolean/0-1 variable sigma(rule, slot). */
    struct Entry {
        sched::SlotId slot = sem::kInvalidId;
        sem::RuleId rule = sem::kInvalidId;
    };

    std::vector<Entry> entries;
    /** Per slot: [begin, end) into entries. */
    std::vector<std::pair<uint32_t, uint32_t>> slotRange;
    /** Per rule: entry indices mentioning the rule. */
    std::vector<std::vector<uint32_t>> ruleEntries;

    static SigmaSpace build(const sched::Skeleton& skeleton)
    {
        SigmaSpace space;
        space.ruleEntries.resize(skeleton.grammar().rules().size());
        for (const sched::SlotInfo& slot : skeleton.slots()) {
            uint32_t begin = static_cast<uint32_t>(space.entries.size());
            for (sem::RuleId rule : slot.candidates) {
                space.ruleEntries[rule].push_back(
                    static_cast<uint32_t>(space.entries.size()));
                space.entries.push_back({slot.id, rule});
            }
            space.slotRange.emplace_back(
                begin, static_cast<uint32_t>(space.entries.size()));
        }
        return space;
    }

    size_t size() const { return entries.size(); }

    /** Entry index of sigma(rule, slot); kInvalidId when not a candidate. */
    uint32_t indexOf(sched::SlotId slot, sem::RuleId rule) const
    {
        for (uint32_t i = slotRange[slot].first; i < slotRange[slot].second;
             ++i) {
            if (entries[i].rule == rule)
                return i;
        }
        return sem::kInvalidId;
    }

    /** Turn a truth assignment over entries into a Schedule. */
    sched::Schedule decode(const std::vector<bool>& values,
                           const sched::Skeleton& skeleton) const
    {
        sched::Schedule schedule;
        schedule.bySlot.assign(skeleton.slotCount(), std::nullopt);
        for (size_t i = 0; i < entries.size(); ++i) {
            if (values[i])
                schedule.bySlot[entries[i].slot] = entries[i].rule;
        }
        return schedule;
    }
};

} // namespace hecate::symbolic
