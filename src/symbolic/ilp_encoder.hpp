#pragma once

/**
 * @file
 * Domain-specific symbolic compilation (paper §5, Hecate proper).
 *
 * The domain-specific interpreter transpiles the traversal into the
 * trace language L_r (symbolic/trace) and projects the trace's
 * dependencies from the time domain into the relational domain: a
 * guarded read of location n.a at (plan) time t becomes the ILP
 * constraint
 *
 *     sigma(a, iota)  <=  sum over writers w of n.a with w < t of
 *                         sigma(rule(n.a), slot(w))
 *
 * (the paper's read constraint, with kappa substituted away), plus the
 * slot (at-most-one) and rule (exactly-one) validity constraints. The
 * result is solved by the from-scratch 0-1 ILP solver. `parallel`
 * regions enter through the plan's happens-before relation: writers in
 * sibling branches are incomparable and simply drop out of the sum.
 *
 * Measurements flow into an obs::Telemetry sink instead of nullable
 * out-params: spans "encode"/"solve" (category "solver") time each
 * call, and counters under "ilp." record the encoding size —
 * ilp.sigma_vars, ilp.constraints, ilp.constraint_terms (the
 * domain-specific Fig. 9 metric), ilp.trace_stmts, ilp.branch_nodes.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/telemetry.hpp"
#include "sched/schedule.hpp"
#include "sched/visit_plan.hpp"
#include "symbolic/sigma.hpp"
#include "tree/tree.hpp"

namespace hecate::solver {
class IlpSolver;
}

namespace hecate::symbolic {

/**
 * Synthesize a schedule for @p skeleton consistent with every tree in
 * @p trees using the domain-specific ILP encoding. Returns std::nullopt
 * when infeasible.
 *
 * @param telemetry sink for encode/solve spans and "ilp.*" counters.
 * @param statesPerStep when non-null, receives the cumulative
 *        constraint-term count after each trace statement (Fig. 9).
 */
std::optional<sched::Schedule>
synthesizeIlp(const sched::Skeleton& skeleton,
              const std::vector<const tree::Tree*>& trees,
              obs::Telemetry& telemetry = obs::Telemetry::nil(),
              std::vector<size_t>* statesPerStep = nullptr);

/**
 * Add the §5.2 validity constraints (slot at-most-one, rule
 * exactly-one) over @p sigma's variables to @p ilp. Returns false when
 * some rule has no candidate slot — the problem is statically
 * infeasible. Shared by the one-shot synthesizeIlp and the incremental
 * IlpSession so both paths assert the identical constraint system.
 */
bool addValidityConstraints(const sched::Skeleton& skeleton,
                            const SigmaSpace& sigma,
                            solver::IlpSolver& ilp);

/**
 * Encode one plan's trace program (the per-example read constraints of
 * §5.2) into @p ilp. Returns false when a fixed read is statically
 * unsatisfiable.
 */
bool encodeTraceConstraints(const sched::VisitPlan& plan,
                            const SigmaSpace& sigma, solver::IlpSolver& ilp,
                            obs::Telemetry& telemetry = obs::Telemetry::nil(),
                            std::vector<size_t>* statesPerStep = nullptr);

} // namespace hecate::symbolic
