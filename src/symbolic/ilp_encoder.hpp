#pragma once

/**
 * @file
 * Domain-specific symbolic compilation (paper §5, Hecate proper).
 *
 * The domain-specific interpreter transpiles the traversal into the
 * trace language L_r (symbolic/trace) and projects the trace's
 * dependencies from the time domain into the relational domain: a
 * guarded read of location n.a at (plan) time t becomes the ILP
 * constraint
 *
 *     sigma(a, iota)  <=  sum over writers w of n.a with w < t of
 *                         sigma(rule(n.a), slot(w))
 *
 * (the paper's read constraint, with kappa substituted away), plus the
 * slot (at-most-one) and rule (exactly-one) validity constraints. The
 * result is solved by the from-scratch 0-1 ILP solver. `parallel`
 * regions enter through the plan's happens-before relation: writers in
 * sibling branches are incomparable and simply drop out of the sum.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"
#include "sched/visit_plan.hpp"
#include "symbolic/sigma.hpp"
#include "tree/tree.hpp"

namespace hecate::solver {
class IlpSolver;
}

namespace hecate::symbolic {

/** Measurements of one domain-specific synthesis query. */
struct IlpStats {
    size_t sigmaVars = 0;
    size_t constraints = 0;
    size_t constraintTerms = 0; ///< the domain-specific Fig. 9 metric
    size_t traceStmts = 0;
    uint64_t branchNodes = 0;
    uint64_t hintedBranches = 0; ///< warm-started branch decisions
    uint64_t warmRestarts = 0;   ///< budgeted warm solves that fell back cold
    double encodeSeconds = 0.0;
    double solveSeconds = 0.0;
};

/**
 * Synthesize a schedule for @p skeleton consistent with every tree in
 * @p trees using the domain-specific ILP encoding. Returns std::nullopt
 * when infeasible.
 *
 * @param statesPerStep when non-null, receives the cumulative
 *        constraint-term count after each trace statement (Fig. 9).
 */
std::optional<sched::Schedule>
synthesizeIlp(const sched::Skeleton& skeleton,
              const std::vector<const tree::Tree*>& trees,
              IlpStats* stats = nullptr,
              std::vector<size_t>* statesPerStep = nullptr);

/**
 * Add the §5.2 validity constraints (slot at-most-one, rule
 * exactly-one) over @p sigma's variables to @p ilp. Returns false when
 * some rule has no candidate slot — the problem is statically
 * infeasible. Shared by the one-shot synthesizeIlp and the incremental
 * IlpSession so both paths assert the identical constraint system.
 */
bool addValidityConstraints(const sched::Skeleton& skeleton,
                            const SigmaSpace& sigma,
                            solver::IlpSolver& ilp);

/**
 * Encode one plan's trace program (the per-example read constraints of
 * §5.2) into @p ilp. Returns false when a fixed read is statically
 * unsatisfiable.
 */
bool encodeTraceConstraints(const sched::VisitPlan& plan,
                            const SigmaSpace& sigma, solver::IlpSolver& ilp,
                            IlpStats* stats = nullptr,
                            std::vector<size_t>* statesPerStep = nullptr);

} // namespace hecate::symbolic
