#include "symbolic/ilp_session.hpp"

namespace hecate::symbolic {

IlpSession::IlpSession(const sched::Skeleton& skeleton)
    : skeleton_(&skeleton), sigma_(SigmaSpace::build(skeleton))
{
    for (size_t i = 0; i < sigma_.size(); ++i)
        ilp_.addVar();
    feasible_ = addValidityConstraints(skeleton, sigma_, ilp_);
}

void
IlpSession::addExample(const sched::VisitPlan& plan, obs::Telemetry& telemetry)
{
    ++examples_;
    if (!feasible_)
        return;
    obs::Span encode = telemetry.span("encode", "solver");
    if (!encodeTraceConstraints(plan, sigma_, ilp_, telemetry))
        feasible_ = false;
    encode.end();
    telemetry.set("ilp.sigma_vars", static_cast<double>(sigma_.size()));
}

std::optional<sched::Schedule>
IlpSession::solve(obs::Telemetry& telemetry)
{
    telemetry.set("ilp.sigma_vars", static_cast<double>(sigma_.size()));
    if (!feasible_)
        return std::nullopt;

    obs::Span solveSpan = telemetry.span("solve", "solver");
    solver::IlpResult result;
    bool warm = warmStart_ && !hints_.empty();
    if (warm) {
        // Phase saving steers the DFS back toward the previous feasible
        // assignment, which usually needs only a local repair — but when
        // the new example invalidates it structurally, the hinted branch
        // order can be pathological for a solver without conflict
        // learning. Budget the hinted dive and fall back to the default
        // branch order (identical to a from-scratch solve) when it
        // fails to converge.
        uint64_t budget = kWarmBudgetBase + kWarmBudgetGrowth * lastSolveNodes_;
        ilp_.setPhaseHints(hints_);
        result = ilp_.solve(budget);
    } else {
        ilp_.setPhaseHints({});
        result = ilp_.solve();
    }
    telemetry.add("ilp.branch_nodes",
                  static_cast<double>(ilp_.stats().branchNodes));
    telemetry.add("ilp.hinted_branches",
                  static_cast<double>(ilp_.stats().hintedBranches));
    if (warm && result == solver::IlpResult::Exhausted) {
        // The previous assignment needed more than a local repair;
        // hints from it (and from its successors, which only drift
        // further) are no longer worth trusting. Run this and all
        // remaining rounds cold — minimal-repair solutions also tend to
        // overfit past counterexamples and inflate the CEGIS round
        // count, so a misleading hint costs more than one slow solve.
        warmStart_ = false;
        ilp_.setPhaseHints({});
        result = ilp_.solve();
        telemetry.add("ilp.branch_nodes",
                      static_cast<double>(ilp_.stats().branchNodes));
        telemetry.add("ilp.warm_restarts", 1.0);
    }
    solveSpan.end();
    if (result != solver::IlpResult::Feasible) {
        feasible_ = false; // constraints only accumulate: permanent
        return std::nullopt;
    }
    lastSolveNodes_ = ilp_.stats().branchNodes;

    hints_.resize(sigma_.size());
    std::vector<bool> values(sigma_.size());
    for (size_t i = 0; i < sigma_.size(); ++i) {
        values[i] = ilp_.value(static_cast<uint32_t>(i)) != 0;
        hints_[i] = values[i] ? 1 : 0;
    }
    return sigma_.decode(values, *skeleton_);
}

} // namespace hecate::symbolic
