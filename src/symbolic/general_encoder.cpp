#include "symbolic/general_encoder.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "sched/visit_plan.hpp"
#include "solver/formula.hpp"
#include "solver/sat.hpp"
#include "symbolic/sigma.hpp"

namespace hecate::symbolic {

namespace {

using solver::BoolId;
using solver::FormulaBuilder;

/** Symbolic ready-state: location -> "written by now" formula. */
using State = std::unordered_map<uint64_t, BoolId>;

/** The symbolic interpreter for one plan. */
class GeneralInterpreter {
  public:
    GeneralInterpreter(const sched::VisitPlan& plan,
                       const SigmaSpace& sigma, FormulaBuilder& builder,
                       std::vector<BoolId>& asserts,
                       std::vector<size_t>* statesPerStep)
        : plan_(plan), sigma_(sigma), builder_(builder), asserts_(asserts),
          statesPerStep_(statesPerStep)
    {
    }

    void run()
    {
        State state;
        processRegion(0, state);
    }

  private:
    BoolId sigmaVar(uint32_t entry) const
    {
        // Entry i is problem variable i+1 by construction.
        return builder_.mkVar(entry + 1);
    }

    /** ready(loc) at the current time step: inputs are always ready. */
    BoolId ready(const State& state, sched::Location loc) const
    {
        const sem::Grammar& grammar = plan_.skeleton().grammar();
        const tree::Node& node = plan_.tree().node(loc.node);
        const sem::ClassInfo& cls = grammar.cls(node.cls);
        if (grammar.iface(cls.iface).isInput(loc.attr))
            return FormulaBuilder::trueId();
        auto it = state.find(loc.key());
        return it == state.end() ? FormulaBuilder::falseId() : it->second;
    }

    void processRegion(uint32_t regionId, State& state)
    {
        const auto& region = plan_.regions()[regionId];
        if (region.kind == sched::VisitPlan::RegionKind::Seq) {
            for (const auto& item : region.items)
                processItem(item, state);
            return;
        }
        // Par: every branch starts from the fork state; the join state
        // is the pointwise OR of the branch results.
        State merged = state;
        for (const auto& item : region.items) {
            State branch = state;
            processItem(item, branch);
            for (const auto& [key, formula] : branch) {
                auto it = merged.find(key);
                if (it == merged.end()) {
                    merged.emplace(key, formula);
                } else {
                    it->second = builder_.mkOr(it->second, formula);
                }
            }
        }
        state = std::move(merged);
    }

    void processItem(const sched::VisitPlan::TaskItem& item, State& state)
    {
        if (item.isRegion) {
            processRegion(item.index, state);
            return;
        }
        const sched::Instance& inst = plan_.instances()[item.index];
        size_t asserts_before = asserts_.size();
        if (inst.kind == sched::Instance::Kind::Eval) {
            processEval(inst, state);
        } else {
            processSlot(inst, state);
        }
        // Fig. 9 metric: cumulative tree-expanded size of the formulas
        // the interpreter materialized at this time step (what an
        // engine without structural sharing manages).
        for (size_t i = asserts_before; i < asserts_.size(); ++i)
            expandedStates_ += builder_.expandedSize(asserts_[i]);
        if (statesPerStep_ != nullptr) {
            double clamped = std::min(
                expandedStates_,
                static_cast<double>(
                    std::numeric_limits<size_t>::max() / 2));
            statesPerStep_->push_back(static_cast<size_t>(clamped));
        }
    }

    void processEval(const sched::Instance& inst, State& state)
    {
        for (sched::Location loc : plan_.readsFor(inst, inst.rule))
            asserts_.push_back(ready(state, loc));
        if (inst.writesHere()) {
            auto lhs = plan_.writeFor(inst, inst.rule);
            if (lhs.has_value()) {
                asserts_.push_back(builder_.mkNot(ready(state, *lhs)));
                state[lhs->key()] = FormulaBuilder::trueId();
            }
        }
    }

    void processSlot(const sched::Instance& inst, State& state)
    {
        const sched::SlotInfo& slot = plan_.skeleton().slot(inst.slot);
        // Assertions against the pre-state for every candidate...
        for (sem::RuleId rule : slot.candidates) {
            BoolId guard = sigmaVar(sigma_.indexOf(inst.slot, rule));
            std::vector<BoolId> conds;
            for (sched::Location loc : plan_.readsFor(inst, rule))
                conds.push_back(ready(state, loc));
            if (inst.writesHere()) {
                auto lhs = plan_.writeFor(inst, rule);
                if (lhs.has_value())
                    conds.push_back(builder_.mkNot(ready(state, *lhs)));
            }
            asserts_.push_back(
                builder_.mkImplies(guard, builder_.mkAndN(conds)));
        }
        // ...then the state update: lhs becomes ready iff chosen here.
        if (inst.writesHere()) {
            for (sem::RuleId rule : slot.candidates) {
                BoolId guard = sigmaVar(sigma_.indexOf(inst.slot, rule));
                auto lhs = plan_.writeFor(inst, rule);
                if (!lhs.has_value())
                    continue;
                uint64_t key = lhs->key();
                auto it = state.find(key);
                BoolId before = it == state.end()
                                    ? FormulaBuilder::falseId()
                                    : it->second;
                state[key] = builder_.mkOr(before, guard);
            }
        }
    }

  public:
    double expandedStates_ = 0.0;

  private:
    const sched::VisitPlan& plan_;
    const SigmaSpace& sigma_;
    FormulaBuilder& builder_;
    std::vector<BoolId>& asserts_;
    std::vector<size_t>* statesPerStep_;
};

} // namespace

std::optional<sched::Schedule>
synthesizeGeneral(const sched::Skeleton& skeleton,
                  const std::vector<const tree::Tree*>& trees,
                  obs::Telemetry& telemetry,
                  std::vector<size_t>* statesPerStep)
{
    SigmaSpace sigma = SigmaSpace::build(skeleton);
    FormulaBuilder builder;
    solver::Cnf cnf;
    double expanded_states = 0.0;
    {
        obs::Span encode = telemetry.span("encode", "solver");
        for (size_t i = 0; i < sigma.size(); ++i)
            builder.newVar();

        std::vector<BoolId> asserts;
        for (const tree::Tree* tree : trees) {
            sched::VisitPlan plan(skeleton, *tree);
            GeneralInterpreter interp(plan, sigma, builder, asserts,
                                      statesPerStep);
            interp.run();
            expanded_states += interp.expandedStates_;
        }

        // Auxiliary validity constraints (§4.2): at most one rule per
        // slot, exactly one slot per rule.
        for (sched::SlotId s = 0; s < skeleton.slotCount(); ++s) {
            std::vector<BoolId> vars;
            for (uint32_t i = sigma.slotRange[s].first;
                 i < sigma.slotRange[s].second; ++i) {
                vars.push_back(builder.mkVar(i + 1));
            }
            asserts.push_back(builder.mkAtMostOne(vars));
        }
        const sem::Grammar& grammar = skeleton.grammar();
        for (sem::RuleId rule = 0; rule < grammar.rules().size(); ++rule) {
            // Rules fixed by eval statements are scheduled outside sigma.
            const auto& fixed = skeleton.fixedRules(grammar.rule(rule).cls);
            if (std::find(fixed.begin(), fixed.end(), rule) != fixed.end())
                continue;
            std::vector<BoolId> vars;
            for (uint32_t entry : sigma.ruleEntries[rule])
                vars.push_back(builder.mkVar(entry + 1));
            asserts.push_back(builder.mkExactlyOne(vars));
        }

        cnf = builder.toCnf(builder.mkAndN(asserts));
    }

    obs::Span solve = telemetry.span("solve", "solver");
    solver::SatSolver sat(cnf.numVars);
    bool consistent = true;
    for (const auto& clause : cnf.clauses) {
        if (!sat.addClause(clause)) {
            consistent = false;
            break;
        }
    }
    bool is_sat = consistent && sat.solve() == solver::SatResult::Sat;
    solve.end();

    telemetry.set("sat.sigma_vars", static_cast<double>(sigma.size()));
    telemetry.set("sat.formula_nodes",
                  static_cast<double>(builder.nodeCount()));
    telemetry.set("sat.formula_ops", static_cast<double>(builder.opCount()));
    telemetry.add("sat.expanded_states", expanded_states);
    telemetry.add("sat.cnf_vars", static_cast<double>(cnf.numVars));
    telemetry.add("sat.cnf_clauses", static_cast<double>(cnf.clauses.size()));
    telemetry.add("sat.conflicts", static_cast<double>(sat.stats().conflicts));
    telemetry.add("sat.decisions", static_cast<double>(sat.stats().decisions));

    if (!is_sat)
        return std::nullopt;

    std::vector<bool> values(sigma.size());
    for (size_t i = 0; i < sigma.size(); ++i)
        values[i] = sat.modelValue(static_cast<uint32_t>(i + 1));
    return sigma.decode(values, skeleton);
}

} // namespace hecate::symbolic
