#pragma once

/**
 * @file
 * Hash-consed boolean formula DAG plus Tseitin CNF transformation.
 *
 * This layer plays the role Rosette's symbolic value graph plays in the
 * paper's general-purpose compilation (§4.2): the symbolic interpreter
 * builds ready-bit formulas over assignment variables sigma(a, iota),
 * and the number of distinct DAG nodes is exactly the "# total symbolic
 * states" metric plotted in Fig. 9.
 */

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "support/diagnostics.hpp"

namespace hecate::solver {

/** Index of a node in a FormulaBuilder's DAG. */
using BoolId = uint32_t;

/** Boolean DAG node kinds. */
enum class BoolOp : uint8_t { False, True, Var, Not, And, Or };

/** One DAG node (binary ops; n-ary helpers balance into trees). */
struct BoolNode {
    BoolOp op = BoolOp::False;
    uint32_t var = 0; ///< for Var
    BoolId a = 0;     ///< for Not/And/Or
    BoolId b = 0;     ///< for And/Or
};

/** CNF in near-DIMACS form: literal v>0 means var v, v<0 means NOT var v. */
struct Cnf {
    uint32_t numVars = 0;
    std::vector<std::vector<int32_t>> clauses;
};

/**
 * Builder for hash-consed boolean formulas. Node ids 0 and 1 are the
 * constants false and true. Construction applies constant folding and
 * structural sharing; nodeCount() reports the number of live distinct
 * nodes (the Fig. 9 metric).
 */
class FormulaBuilder {
  public:
    FormulaBuilder();

    static constexpr BoolId falseId() { return 0; }
    static constexpr BoolId trueId() { return 1; }

    /** Allocate a fresh problem variable (1-based, CNF-compatible). */
    uint32_t newVar() { return ++numVars_; }

    uint32_t varCount() const { return numVars_; }

    /** Leaf for variable @p var (must come from newVar). */
    BoolId mkVar(uint32_t var);

    BoolId mkNot(BoolId a);
    BoolId mkAnd(BoolId a, BoolId b);
    BoolId mkOr(BoolId a, BoolId b);
    BoolId mkImplies(BoolId a, BoolId b) { return mkOr(mkNot(a), b); }

    /** Balanced n-ary conjunction / disjunction. */
    BoolId mkAndN(std::span<const BoolId> xs);
    BoolId mkOrN(std::span<const BoolId> xs);

    /** At-most-one over variables (pairwise encoding as a formula). */
    BoolId mkAtMostOne(std::span<const BoolId> xs);

    /** Exactly-one over variables. */
    BoolId mkExactlyOne(std::span<const BoolId> xs);

    const BoolNode& node(BoolId id) const { return nodes_[id]; }

    /** Distinct DAG nodes built so far (after hash-consing). */
    size_t nodeCount() const { return nodes_.size(); }

    /**
     * Total formula construction operations, cache hits included —
     * the number of symbolic-evaluation steps a non-hash-consing
     * engine (like the paper's general-purpose compilation) performs;
     * this is the Fig. 9 symbolic-state metric.
     */
    size_t opCount() const { return ops_; }

    /**
     * Tree-expanded size of the formula rooted at @p id: the number of
     * term nodes a engine *without* structural sharing materializes.
     * Grows multiplicatively where the DAG shares subterms.
     */
    double expandedSize(BoolId id) const { return expanded_[id]; }

    /**
     * Tseitin-transform the formula rooted at @p root (asserted true)
     * into CNF. Fresh auxiliary variables extend the problem variables;
     * problem-variable indices are preserved so a SAT model can be read
     * back directly.
     */
    Cnf toCnf(BoolId root) const;

    /** Evaluate @p root under @p assignment (indexed by var, 1-based). */
    bool evaluate(BoolId root, const std::vector<bool>& assignment) const;

  private:
    BoolId intern(BoolNode node);

    struct NodeKey {
        uint8_t op;
        uint32_t var;
        BoolId a;
        BoolId b;
        bool operator==(const NodeKey&) const = default;
    };
    struct NodeKeyHash {
        size_t operator()(const NodeKey& k) const
        {
            uint64_t x = (static_cast<uint64_t>(k.op) << 56) ^
                         (static_cast<uint64_t>(k.var) << 24) ^
                         (static_cast<uint64_t>(k.a) << 12) ^ k.b;
            x *= 0x9e3779b97f4a7c15ULL;
            return static_cast<size_t>(x ^ (x >> 32));
        }
    };

    static NodeKey keyOf(const BoolNode& node)
    {
        return {static_cast<uint8_t>(node.op), node.var, node.a, node.b};
    }

    std::vector<BoolNode> nodes_;
    std::unordered_map<NodeKey, BoolId, NodeKeyHash> interned_;
    std::vector<double> expanded_;
    uint32_t numVars_ = 0;
    size_t ops_ = 0;
};

} // namespace hecate::solver
