#include "solver/sat.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace hecate::solver {

SatSolver::SatSolver(uint32_t numVars)
{
    ensureVars(numVars);
}

void
SatSolver::ensureVars(uint32_t numVars)
{
    if (numVars <= numVars_)
        return;
    numVars_ = numVars;
    assigns_.resize(numVars_, LBool::Undef);
    levels_.resize(numVars_, 0);
    reasons_.resize(numVars_, kNoReason);
    activity_.resize(numVars_, 0.0);
    polarity_.resize(numVars_, false);
    watches_.resize(2 * numVars_);
}

bool
SatSolver::addClause(const std::vector<int32_t>& lits)
{
    if (rootConflict_)
        return false;

    // Normalize: dedupe, drop tautologies and root-false literals.
    std::vector<Lit> norm;
    for (int32_t ext : lits) {
        checkInvariant(ext != 0, "addClause: zero literal");
        uint32_t v = static_cast<uint32_t>(ext > 0 ? ext : -ext) - 1;
        ensureVars(v + 1);
        Lit l = mkLit(v, ext < 0);
        LBool val = valueLit(l);
        if (val == LBool::True && levels_[v] == 0)
            return true; // satisfied at root
        if (val == LBool::False && levels_[v] == 0)
            continue; // root-false literal: drop
        bool dup = false;
        for (Lit other : norm) {
            if (other == l)
                dup = true;
            if (other == negate(l))
                return true; // tautology
        }
        if (!dup)
            norm.push_back(l);
    }

    if (norm.empty()) {
        rootConflict_ = true;
        return false;
    }
    if (norm.size() == 1) {
        if (valueLit(norm[0]) == LBool::False) {
            rootConflict_ = true;
            return false;
        }
        if (valueLit(norm[0]) == LBool::Undef) {
            enqueue(norm[0], kNoReason);
            if (propagate() != kNoReason) {
                rootConflict_ = true;
                return false;
            }
        }
        return true;
    }

    Clause clause;
    clause.lits = std::move(norm);
    attachClause(std::move(clause));
    return true;
}

uint32_t
SatSolver::attachClause(Clause clause)
{
    uint32_t idx = static_cast<uint32_t>(clauses_.size());
    watches_[negate(clause.lits[0])].push_back(idx);
    watches_[negate(clause.lits[1])].push_back(idx);
    clauses_.push_back(std::move(clause));
    return idx;
}

void
SatSolver::enqueue(Lit l, uint32_t reason)
{
    uint32_t v = varOf(l);
    assigns_[v] = signOf(l) ? LBool::False : LBool::True;
    levels_[v] = static_cast<uint32_t>(trailLimits_.size());
    reasons_[v] = reason;
    polarity_[v] = !signOf(l);
    trail_.push_back(l);
}

uint32_t
SatSolver::propagate()
{
    while (propagateHead_ < trail_.size()) {
        Lit l = trail_[propagateHead_++];
        ++stats_.propagations;
        std::vector<uint32_t>& watch_list = watches_[l];
        size_t keep = 0;
        uint32_t conflict = kNoReason;

        for (size_t i = 0; i < watch_list.size(); ++i) {
            uint32_t ci = watch_list[i];
            Clause& clause = clauses_[ci];
            auto& cl = clause.lits;

            // Ensure the falsified literal is at position 1.
            if (cl[0] == negate(l))
                std::swap(cl[0], cl[1]);

            if (valueLit(cl[0]) == LBool::True) {
                watch_list[keep++] = ci; // clause satisfied; keep watch
                continue;
            }

            // Look for a replacement watch.
            bool moved = false;
            for (size_t k = 2; k < cl.size(); ++k) {
                if (valueLit(cl[k]) != LBool::False) {
                    std::swap(cl[1], cl[k]);
                    watches_[negate(cl[1])].push_back(ci);
                    moved = true;
                    break;
                }
            }
            if (moved)
                continue;

            // Unit or conflicting.
            watch_list[keep++] = ci;
            if (valueLit(cl[0]) == LBool::False) {
                conflict = ci;
                // keep remaining watches untouched
                for (size_t k = i + 1; k < watch_list.size(); ++k)
                    watch_list[keep++] = watch_list[k];
                break;
            }
            enqueue(cl[0], ci);
        }
        watch_list.resize(keep);
        if (conflict != kNoReason)
            return conflict;
    }
    return kNoReason;
}

void
SatSolver::bumpVar(uint32_t v)
{
    activity_[v] += activityInc_;
    if (activity_[v] > 1e100) {
        for (double& a : activity_)
            a *= 1e-100;
        activityInc_ *= 1e-100;
    }
}

void
SatSolver::decayActivities()
{
    activityInc_ /= 0.95;
}

void
SatSolver::analyze(uint32_t conflict, std::vector<Lit>& learnt,
                   uint32_t& backLevel)
{
    learnt.clear();
    learnt.push_back(0); // slot for the asserting literal

    std::vector<bool> seen(numVars_, false);
    uint32_t counter = 0;
    Lit asserting = 0;
    uint32_t clause_idx = conflict;
    size_t trail_pos = trail_.size();
    uint32_t current_level = static_cast<uint32_t>(trailLimits_.size());

    for (;;) {
        const Clause& clause = clauses_[clause_idx];
        // Skip position 0 when expanding a reason (it is the implied lit).
        size_t start = (clause_idx == conflict) ? 0 : 1;
        for (size_t i = start; i < clause.lits.size(); ++i) {
            Lit q = clause.lits[i];
            uint32_t v = varOf(q);
            if (seen[v] || levels_[v] == 0)
                continue;
            seen[v] = true;
            bumpVar(v);
            if (levels_[v] == current_level) {
                ++counter;
            } else {
                learnt.push_back(q);
            }
        }

        // Find next seen literal on the trail.
        for (;;) {
            checkInvariant(trail_pos > 0, "analyze: trail exhausted");
            Lit p = trail_[--trail_pos];
            if (seen[varOf(p)]) {
                asserting = p;
                clause_idx = reasons_[varOf(p)];
                break;
            }
        }
        seen[varOf(asserting)] = false;
        if (--counter == 0)
            break;
        checkInvariant(clause_idx != kNoReason, "analyze: decision reached");
    }
    learnt[0] = negate(asserting);

    // Compute backjump level: highest level among learnt[1..].
    backLevel = 0;
    size_t max_idx = 1;
    for (size_t i = 1; i < learnt.size(); ++i) {
        uint32_t lvl = levels_[varOf(learnt[i])];
        if (lvl > backLevel) {
            backLevel = lvl;
            max_idx = i;
        }
    }
    if (learnt.size() > 1)
        std::swap(learnt[1], learnt[max_idx]);
}

void
SatSolver::backtrackTo(uint32_t level)
{
    if (trailLimits_.size() <= level)
        return;
    size_t bound = trailLimits_[level];
    for (size_t i = trail_.size(); i > bound; --i) {
        uint32_t v = varOf(trail_[i - 1]);
        assigns_[v] = LBool::Undef;
        reasons_[v] = kNoReason;
    }
    trail_.resize(bound);
    trailLimits_.resize(level);
    propagateHead_ = trail_.size();
}

int32_t
SatSolver::pickBranchVar()
{
    int32_t best = -1;
    double best_act = -1.0;
    for (uint32_t v = 0; v < numVars_; ++v) {
        if (assigns_[v] == LBool::Undef && activity_[v] > best_act) {
            best = static_cast<int32_t>(v);
            best_act = activity_[v];
        }
    }
    return best;
}

SatResult
SatSolver::solve()
{
    if (rootConflict_)
        return SatResult::Unsat;
    if (propagate() != kNoReason) {
        rootConflict_ = true;
        return SatResult::Unsat;
    }

    uint64_t conflict_budget = 128; // geometric restart schedule
    uint64_t conflicts_here = 0;
    std::vector<Lit> learnt;

    for (;;) {
        uint32_t conflict = propagate();
        if (conflict != kNoReason) {
            ++stats_.conflicts;
            ++conflicts_here;
            if (trailLimits_.empty()) {
                rootConflict_ = true;
                return SatResult::Unsat;
            }
            uint32_t back_level = 0;
            analyze(conflict, learnt, back_level);
            backtrackTo(back_level);
            if (learnt.size() == 1) {
                enqueue(learnt[0], kNoReason);
            } else {
                Clause clause;
                clause.lits = learnt;
                clause.learned = true;
                uint32_t idx = attachClause(std::move(clause));
                ++stats_.learnedClauses;
                enqueue(learnt[0], idx);
            }
            decayActivities();
            continue;
        }

        if (conflicts_here >= conflict_budget) {
            // restart
            conflicts_here = 0;
            conflict_budget = conflict_budget + conflict_budget / 2;
            ++stats_.restarts;
            backtrackTo(0);
            continue;
        }

        int32_t v = pickBranchVar();
        if (v < 0)
            return SatResult::Sat; // complete assignment
        ++stats_.decisions;
        trailLimits_.push_back(static_cast<uint32_t>(trail_.size()));
        enqueue(mkLit(static_cast<uint32_t>(v), !polarity_[v]), kNoReason);
    }
}

bool
SatSolver::modelValue(uint32_t var) const
{
    checkInvariant(var >= 1 && var <= numVars_, "modelValue: bad var");
    return assigns_[var - 1] == LBool::True;
}

} // namespace hecate::solver
