#pragma once

/**
 * @file
 * A from-scratch CDCL SAT solver: two-literal watching, 1-UIP conflict
 * analysis with clause learning, VSIDS-style activities, phase saving,
 * and geometric restarts.
 *
 * This is the "off-the-shelf SMT solver" substrate of the paper's
 * general-purpose symbolic compilation (the constraints of §4.2 are
 * purely boolean, so propositional SAT is the exact required theory).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hecate::solver {

/** Outcome of a solve() call. */
enum class SatResult { Sat, Unsat };

/** CDCL solver. Variables are 1-based; literals are ±var. */
class SatSolver {
  public:
    explicit SatSolver(uint32_t numVars = 0);

    /** Grow the variable universe to at least @p numVars. */
    void ensureVars(uint32_t numVars);

    uint32_t varCount() const { return static_cast<uint32_t>(numVars_); }

    /**
     * Add a clause of DIMACS-style literals. Returns false when the
     * formula is already unsatisfiable at the root level.
     */
    bool addClause(const std::vector<int32_t>& lits);

    /** Decide satisfiability of the accumulated clauses. */
    SatResult solve();

    /** Model value of @p var (valid after Sat). */
    bool modelValue(uint32_t var) const;

    /** Search statistics (for the evaluation write-up). */
    struct Stats {
        uint64_t decisions = 0;
        uint64_t propagations = 0;
        uint64_t conflicts = 0;
        uint64_t learnedClauses = 0;
        uint64_t restarts = 0;
    };

    const Stats& stats() const { return stats_; }

  private:
    // Internal literal encoding: lit = 2*v + sign, v 0-based.
    using Lit = uint32_t;
    static Lit mkLit(uint32_t v, bool neg) { return 2 * v + (neg ? 1 : 0); }
    static Lit negate(Lit l) { return l ^ 1; }
    static uint32_t varOf(Lit l) { return l >> 1; }
    static bool signOf(Lit l) { return (l & 1) != 0; }

    static constexpr uint32_t kNoReason = UINT32_MAX;

    struct Clause {
        std::vector<Lit> lits;
        bool learned = false;
    };

    enum class LBool : int8_t { False = 0, True = 1, Undef = 2 };

    LBool valueLit(Lit l) const
    {
        LBool v = assigns_[varOf(l)];
        if (v == LBool::Undef)
            return LBool::Undef;
        bool b = (v == LBool::True) != signOf(l);
        return b ? LBool::True : LBool::False;
    }

    void enqueue(Lit l, uint32_t reason);
    uint32_t propagate(); // returns conflicting clause index or kNoReason
    void analyze(uint32_t conflict, std::vector<Lit>& learnt,
                 uint32_t& backLevel);
    void backtrackTo(uint32_t level);
    void bumpVar(uint32_t v);
    void decayActivities();
    int32_t pickBranchVar(); // -1 when all assigned
    uint32_t attachClause(Clause clause);

    size_t numVars_ = 0;
    std::vector<Clause> clauses_;
    std::vector<std::vector<uint32_t>> watches_; // per literal
    std::vector<LBool> assigns_;                 // per var
    std::vector<uint32_t> levels_;               // per var
    std::vector<uint32_t> reasons_;              // per var (clause idx)
    std::vector<Lit> trail_;
    std::vector<uint32_t> trailLimits_;
    size_t propagateHead_ = 0;
    std::vector<double> activity_;
    std::vector<bool> polarity_; // phase saving (last assigned sign)
    double activityInc_ = 1.0;
    bool rootConflict_ = false;
    Stats stats_;
};

} // namespace hecate::solver
