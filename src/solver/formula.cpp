#include "solver/formula.hpp"

#include <algorithm>

namespace hecate::solver {

FormulaBuilder::FormulaBuilder()
{
    // id 0 = false, id 1 = true
    nodes_.push_back({BoolOp::False, 0, 0, 0});
    nodes_.push_back({BoolOp::True, 0, 0, 0});
    expanded_.push_back(1.0);
    expanded_.push_back(1.0);
}

BoolId
FormulaBuilder::intern(BoolNode node)
{
    NodeKey key = keyOf(node);
    auto it = interned_.find(key);
    if (it != interned_.end())
        return it->second;
    BoolId id = static_cast<BoolId>(nodes_.size());
    double size = 1.0;
    switch (node.op) {
      case BoolOp::Not:
        size += expanded_[node.a];
        break;
      case BoolOp::And:
      case BoolOp::Or:
        size += expanded_[node.a] + expanded_[node.b];
        break;
      default:
        break;
    }
    nodes_.push_back(node);
    expanded_.push_back(size);
    interned_.emplace(key, id);
    return id;
}

BoolId
FormulaBuilder::mkVar(uint32_t var)
{
    checkInvariant(var >= 1 && var <= numVars_, "mkVar: unknown variable");
    return intern({BoolOp::Var, var, 0, 0});
}

BoolId
FormulaBuilder::mkNot(BoolId a)
{
    ++ops_;
    if (a == falseId())
        return trueId();
    if (a == trueId())
        return falseId();
    // double negation
    if (nodes_[a].op == BoolOp::Not)
        return nodes_[a].a;
    return intern({BoolOp::Not, 0, a, 0});
}

BoolId
FormulaBuilder::mkAnd(BoolId a, BoolId b)
{
    ++ops_;
    if (a == falseId() || b == falseId())
        return falseId();
    if (a == trueId())
        return b;
    if (b == trueId())
        return a;
    if (a == b)
        return a;
    if (a > b)
        std::swap(a, b); // canonical order improves sharing
    return intern({BoolOp::And, 0, a, b});
}

BoolId
FormulaBuilder::mkOr(BoolId a, BoolId b)
{
    ++ops_;
    if (a == trueId() || b == trueId())
        return trueId();
    if (a == falseId())
        return b;
    if (b == falseId())
        return a;
    if (a == b)
        return a;
    if (a > b)
        std::swap(a, b);
    return intern({BoolOp::Or, 0, a, b});
}

BoolId
FormulaBuilder::mkAndN(std::span<const BoolId> xs)
{
    if (xs.empty())
        return trueId();
    // balanced reduction keeps the DAG shallow
    std::vector<BoolId> level(xs.begin(), xs.end());
    while (level.size() > 1) {
        std::vector<BoolId> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(mkAnd(level[i], level[i + 1]));
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

BoolId
FormulaBuilder::mkOrN(std::span<const BoolId> xs)
{
    if (xs.empty())
        return falseId();
    std::vector<BoolId> level(xs.begin(), xs.end());
    while (level.size() > 1) {
        std::vector<BoolId> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(mkOr(level[i], level[i + 1]));
        if (level.size() % 2 == 1)
            next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

BoolId
FormulaBuilder::mkAtMostOne(std::span<const BoolId> xs)
{
    BoolId acc = trueId();
    for (size_t i = 0; i < xs.size(); ++i) {
        for (size_t j = i + 1; j < xs.size(); ++j)
            acc = mkAnd(acc, mkNot(mkAnd(xs[i], xs[j])));
    }
    return acc;
}

BoolId
FormulaBuilder::mkExactlyOne(std::span<const BoolId> xs)
{
    return mkAnd(mkOrN(xs), mkAtMostOne(xs));
}

Cnf
FormulaBuilder::toCnf(BoolId root) const
{
    Cnf cnf;
    cnf.numVars = numVars_;

    if (root == falseId()) {
        cnf.clauses.push_back({}); // empty clause: unsatisfiable
        return cnf;
    }
    if (root == trueId())
        return cnf;

    // Post-order over reachable nodes so operands get their Tseitin
    // literal before any user (the DAG shares nodes, so plain discovery
    // order is not topological).
    std::vector<int32_t> lit_of(nodes_.size(), 0);
    std::vector<BoolId> order;
    std::vector<bool> seen(nodes_.size(), false);
    std::vector<std::pair<BoolId, bool>> stack{{root, false}};
    while (!stack.empty()) {
        auto [id, expanded] = stack.back();
        stack.pop_back();
        if (id <= trueId())
            continue;
        if (expanded) {
            order.push_back(id);
            continue;
        }
        if (seen[id])
            continue;
        seen[id] = true;
        stack.emplace_back(id, true);
        const BoolNode& n = nodes_[id];
        if (n.op == BoolOp::Not) {
            stack.emplace_back(n.a, false);
        } else if (n.op == BoolOp::And || n.op == BoolOp::Or) {
            stack.emplace_back(n.a, false);
            stack.emplace_back(n.b, false);
        }
    }

    auto litFor = [&](BoolId id) -> int32_t {
        checkInvariant(id > trueId(), "constant leaked into Tseitin");
        return lit_of[id];
    };

    // Assign literals in post-order: Var nodes reuse the problem
    // variable; Not nodes reuse the negation of their operand; And/Or
    // get a fresh auxiliary variable with the usual Tseitin clauses.
    for (BoolId id : order) {
        const BoolNode& n = nodes_[id];
        switch (n.op) {
          case BoolOp::Var:
            lit_of[id] = static_cast<int32_t>(n.var);
            break;
          case BoolOp::Not:
            lit_of[id] = -litFor(n.a);
            break;
          case BoolOp::And:
          case BoolOp::Or: {
            int32_t self = static_cast<int32_t>(++cnf.numVars);
            lit_of[id] = self;
            int32_t a = litFor(n.a);
            int32_t b = litFor(n.b);
            if (n.op == BoolOp::And) {
                // self <-> a & b
                cnf.clauses.push_back({-self, a});
                cnf.clauses.push_back({-self, b});
                cnf.clauses.push_back({self, -a, -b});
            } else {
                // self <-> a | b
                cnf.clauses.push_back({self, -a});
                cnf.clauses.push_back({self, -b});
                cnf.clauses.push_back({-self, a, b});
            }
            break;
          }
          default:
            internalError("unexpected node in Tseitin pass");
        }
    }

    cnf.clauses.push_back({litFor(root)});
    return cnf;
}

bool
FormulaBuilder::evaluate(BoolId root, const std::vector<bool>& assignment) const
{
    std::vector<int8_t> memo(nodes_.size(), -1);
    // iterative post-order evaluation
    std::vector<BoolId> stack{root};
    while (!stack.empty()) {
        BoolId id = stack.back();
        if (memo[id] >= 0) {
            stack.pop_back();
            continue;
        }
        const BoolNode& n = nodes_[id];
        switch (n.op) {
          case BoolOp::False:
            memo[id] = 0;
            stack.pop_back();
            break;
          case BoolOp::True:
            memo[id] = 1;
            stack.pop_back();
            break;
          case BoolOp::Var:
            checkInvariant(n.var < assignment.size() + 1,
                           "evaluate: assignment too small");
            memo[id] = assignment[n.var - 1] ? 1 : 0;
            stack.pop_back();
            break;
          case BoolOp::Not:
            if (memo[n.a] < 0) {
                stack.push_back(n.a);
            } else {
                memo[id] = memo[n.a] ? 0 : 1;
                stack.pop_back();
            }
            break;
          case BoolOp::And:
          case BoolOp::Or:
            if (memo[n.a] < 0) {
                stack.push_back(n.a);
            } else if (memo[n.b] < 0) {
                stack.push_back(n.b);
            } else {
                bool va = memo[n.a] != 0;
                bool vb = memo[n.b] != 0;
                memo[id] = (n.op == BoolOp::And ? (va && vb) : (va || vb))
                               ? 1 : 0;
                stack.pop_back();
            }
            break;
        }
    }
    return memo[root] != 0;
}

} // namespace hecate::solver
