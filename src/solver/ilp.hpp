#pragma once

/**
 * @file
 * A from-scratch 0-1 integer linear programming solver, the substrate
 * the paper's domain-specific symbolic compilation targets (Def. 3.7;
 * the paper uses CPLEX). The search is depth-first branch-and-bound
 * over binary variables with per-constraint bound propagation: each
 * linear constraint maintains the min/max achievable activity under
 * the current partial assignment and forces variables whose other
 * value would make the constraint unsatisfiable.
 *
 * The synthesis constraints of §5.2 are feasibility problems with small
 * coefficients (read constraints, at-most-one, exactly-one), for which
 * this propagation is strong; an optional linear objective is minimized
 * by iterative bound tightening.
 */

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

namespace hecate::solver {

/** One linear term coeff * x_var. */
struct LinTerm {
    int64_t coeff = 0;
    uint32_t var = 0; ///< 0-based variable index
};

/** Outcome of an ILP solve. */
enum class IlpResult {
    Feasible,
    Infeasible,
    Exhausted, ///< node budget hit before a solution or an infeasibility proof
};

/** 0-1 ILP solver. */
class IlpSolver {
  public:
    /** Allocate a fresh binary variable; returns its index. */
    uint32_t addVar();

    uint32_t varCount() const { return static_cast<uint32_t>(numVars_); }

    /** Add constraint lo <= sum(terms) <= hi. */
    void addRange(std::vector<LinTerm> terms, int64_t lo, int64_t hi);

    /** sum(terms) <= bound */
    void addLe(std::vector<LinTerm> terms, int64_t bound)
    {
        addRange(std::move(terms), std::numeric_limits<int64_t>::min(),
                 bound);
    }

    /** sum(terms) >= bound */
    void addGe(std::vector<LinTerm> terms, int64_t bound)
    {
        addRange(std::move(terms), bound,
                 std::numeric_limits<int64_t>::max());
    }

    /** sum(terms) == bound */
    void addEq(std::vector<LinTerm> terms, int64_t bound)
    {
        addRange(std::move(terms), bound, bound);
    }

    /**
     * Set a linear objective to minimize. Optional; without one the
     * solver answers pure feasibility.
     */
    void setObjective(std::vector<LinTerm> terms);

    /**
     * Phase-saving warm start: when branching on variable v with
     * v < hints.size(), try hints[v] first instead of the default 1.
     * Re-solving after adding constraints with the previous feasible
     * assignment as hints dives straight back to that assignment and
     * only searches where the new constraints force a repair. Hints
     * never affect completeness, only branch order.
     */
    void setPhaseHints(std::vector<int8_t> hints);

    /**
     * Solve. Search effort is bounded by @p maxNodes branch nodes;
     * hitting the budget without finding a solution returns Exhausted
     * (not Infeasible — no infeasibility proof was completed).
     */
    IlpResult solve(uint64_t maxNodes = UINT64_MAX);

    /** Value of @p var in the best found solution (valid after Feasible). */
    int64_t value(uint32_t var) const { return best_[var]; }

    /** Objective value of the best solution (0 when no objective). */
    int64_t objectiveValue() const { return bestObjective_; }

    size_t constraintCount() const { return constraints_.size(); }

    /** Search statistics. */
    struct Stats {
        uint64_t branchNodes = 0;
        uint64_t propagations = 0;
        uint64_t conflicts = 0;
        uint64_t hintedBranches = 0; ///< branches whose first try was a hint
    };
    const Stats& stats() const { return stats_; }

  private:
    struct Constraint {
        std::vector<LinTerm> terms;
        int64_t lo;
        int64_t hi;
    };

    static constexpr int8_t kUnassigned = -1;

    bool propagate(std::vector<int8_t>& assign,
                   std::vector<uint32_t>& trail);
    bool forceVar(uint32_t var, int8_t value, std::vector<int8_t>& assign,
                  std::vector<uint32_t>& trail);
    void enqueueConstraint(uint32_t ci);
    void clearQueue();
    void undoTrail(std::vector<int8_t>& assign,
                   std::vector<uint32_t>& trail, size_t mark);
    bool search(std::vector<int8_t>& assign, uint64_t maxNodes);
    int32_t pickVar(const std::vector<int8_t>& assign) const;

    /** Static branch order: most-constrained variables first. */
    std::vector<uint32_t> branchOrder_;

    size_t numVars_ = 0;
    std::vector<Constraint> constraints_;
    std::vector<std::vector<uint32_t>> occurs_; // var -> constraint idxs
    std::vector<LinTerm> objective_;
    bool hasObjective_ = false;
    std::vector<int8_t> phaseHints_; // branch-value hints (may be short)

    // Incremental activities: current min/max achievable sum per constraint.
    std::vector<int64_t> minAct_;
    std::vector<int64_t> maxAct_;

    // Worklist of constraints touched since the last propagation.
    std::vector<uint32_t> queue_;
    std::vector<bool> inQueue_;

    std::vector<int64_t> best_;
    int64_t bestObjective_ = 0;
    bool haveSolution_ = false;
    bool exhausted_ = false; ///< last search hit its node budget
    Stats stats_;
};

} // namespace hecate::solver
