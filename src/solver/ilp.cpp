#include "solver/ilp.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace hecate::solver {

uint32_t
IlpSolver::addVar()
{
    uint32_t idx = static_cast<uint32_t>(numVars_++);
    occurs_.emplace_back();
    return idx;
}

void
IlpSolver::addRange(std::vector<LinTerm> terms, int64_t lo, int64_t hi)
{
    // Merge duplicate variables so activity bookkeeping stays exact.
    std::sort(terms.begin(), terms.end(),
              [](const LinTerm& a, const LinTerm& b) { return a.var < b.var; });
    std::vector<LinTerm> merged;
    for (const LinTerm& term : terms) {
        checkInvariant(term.var < numVars_, "addRange: unknown variable");
        if (!merged.empty() && merged.back().var == term.var) {
            merged.back().coeff += term.coeff;
        } else {
            merged.push_back(term);
        }
    }
    std::erase_if(merged, [](const LinTerm& t) { return t.coeff == 0; });

    uint32_t idx = static_cast<uint32_t>(constraints_.size());
    for (const LinTerm& term : merged)
        occurs_[term.var].push_back(idx);
    constraints_.push_back({std::move(merged), lo, hi});
}

void
IlpSolver::setObjective(std::vector<LinTerm> terms)
{
    objective_ = std::move(terms);
    hasObjective_ = true;
}

void
IlpSolver::setPhaseHints(std::vector<int8_t> hints)
{
    phaseHints_ = std::move(hints);
}

void
IlpSolver::enqueueConstraint(uint32_t ci)
{
    if (!inQueue_[ci]) {
        inQueue_[ci] = true;
        queue_.push_back(ci);
    }
}

void
IlpSolver::clearQueue()
{
    for (uint32_t ci : queue_)
        inQueue_[ci] = false;
    queue_.clear();
}

bool
IlpSolver::forceVar(uint32_t var, int8_t value, std::vector<int8_t>& assign,
                    std::vector<uint32_t>& trail)
{
    if (assign[var] != kUnassigned)
        return assign[var] == value;
    assign[var] = value;
    trail.push_back(var);
    for (uint32_t ci : occurs_[var]) {
        const Constraint& con = constraints_[ci];
        // Find this var's coefficient (constraints are small; linear scan).
        int64_t coeff = 0;
        for (const LinTerm& term : con.terms) {
            if (term.var == var) {
                coeff = term.coeff;
                break;
            }
        }
        int64_t contribution = value ? coeff : 0;
        minAct_[ci] += contribution - std::min<int64_t>(0, coeff);
        maxAct_[ci] += contribution - std::max<int64_t>(0, coeff);
        if (minAct_[ci] > con.hi || maxAct_[ci] < con.lo) {
            ++stats_.conflicts;
            return false;
        }
        enqueueConstraint(ci);
    }
    return true;
}

bool
IlpSolver::propagate(std::vector<int8_t>& assign,
                     std::vector<uint32_t>& trail)
{
    // Worklist propagation: only constraints whose activity bounds
    // changed since the last call are re-examined; forcing a variable
    // enqueues its other constraints.
    while (!queue_.empty()) {
        uint32_t ci = queue_.back();
        queue_.pop_back();
        inQueue_[ci] = false;
        const Constraint& con = constraints_[ci];
        if (minAct_[ci] > con.hi || maxAct_[ci] < con.lo) {
            ++stats_.conflicts;
            clearQueue();
            return false;
        }
        for (const LinTerm& term : con.terms) {
            if (assign[term.var] != kUnassigned)
                continue;
            int64_t up = std::max<int64_t>(0, term.coeff);
            int64_t down = std::max<int64_t>(0, -term.coeff);
            bool can_be_one = minAct_[ci] + up <= con.hi &&
                              maxAct_[ci] + std::min<int64_t>(
                                                0, term.coeff) >= con.lo;
            bool can_be_zero = minAct_[ci] + down <= con.hi &&
                               maxAct_[ci] -
                                       std::max<int64_t>(0, term.coeff) >=
                                   con.lo;
            if (!can_be_one && !can_be_zero) {
                ++stats_.conflicts;
                clearQueue();
                return false;
            }
            if (!can_be_one || !can_be_zero) {
                ++stats_.propagations;
                if (!forceVar(term.var, can_be_one ? 1 : 0, assign,
                              trail)) {
                    clearQueue();
                    return false;
                }
            }
        }
    }
    return true;
}

void
IlpSolver::undoTrail(std::vector<int8_t>& assign,
                     std::vector<uint32_t>& trail, size_t mark)
{
    clearQueue();
    while (trail.size() > mark) {
        uint32_t var = trail.back();
        trail.pop_back();
        int8_t value = assign[var];
        assign[var] = kUnassigned;
        for (uint32_t ci : occurs_[var]) {
            const Constraint& con = constraints_[ci];
            int64_t coeff = 0;
            for (const LinTerm& term : con.terms) {
                if (term.var == var) {
                    coeff = term.coeff;
                    break;
                }
            }
            int64_t contribution = value ? coeff : 0;
            minAct_[ci] -= contribution - std::min<int64_t>(0, coeff);
            maxAct_[ci] -= contribution - std::max<int64_t>(0, coeff);
        }
    }
}

int32_t
IlpSolver::pickVar(const std::vector<int8_t>& assign) const
{
    // Most-constrained first along a precomputed static order.
    for (uint32_t v : branchOrder_) {
        if (assign[v] == kUnassigned)
            return static_cast<int32_t>(v);
    }
    return -1;
}

bool
IlpSolver::search(std::vector<int8_t>& assign, uint64_t maxNodes)
{
    if (stats_.branchNodes >= maxNodes) {
        exhausted_ = true;
        return false;
    }
    ++stats_.branchNodes;

    size_t mark_outer = 0; // placeholder; propagation trail handled by caller
    (void)mark_outer;

    // Objective lower bound pruning.
    if (hasObjective_ && haveSolution_) {
        int64_t bound = 0;
        for (const LinTerm& term : objective_) {
            if (assign[term.var] == kUnassigned) {
                bound += std::min<int64_t>(0, term.coeff);
            } else if (assign[term.var] == 1) {
                bound += term.coeff;
            }
        }
        if (bound >= bestObjective_)
            return false;
    }

    int32_t var = pickVar(assign);
    if (var < 0) {
        // Complete assignment; constraints hold by propagation invariant.
        int64_t obj = 0;
        for (const LinTerm& term : objective_) {
            if (assign[term.var] == 1)
                obj += term.coeff;
        }
        if (!haveSolution_ || !hasObjective_ || obj < bestObjective_) {
            best_.assign(numVars_, 0);
            for (uint32_t v = 0; v < numVars_; ++v)
                best_[v] = assign[v] == 1 ? 1 : 0;
            bestObjective_ = obj;
            haveSolution_ = true;
        }
        return !hasObjective_; // feasibility mode: stop at first solution
    }

    int8_t first = 1;
    if (static_cast<size_t>(var) < phaseHints_.size()) {
        first = phaseHints_[var] ? 1 : 0;
        ++stats_.hintedBranches;
    }
    for (int attempt = 0; attempt < 2; ++attempt) {
        int8_t value = attempt == 0 ? first : static_cast<int8_t>(1 - first);
        std::vector<uint32_t> trail;
        bool ok = forceVar(static_cast<uint32_t>(var), value, assign, trail) &&
                  propagate(assign, trail);
        if (ok && search(assign, maxNodes))
            return true;
        undoTrail(assign, trail, 0);
        if (stats_.branchNodes >= maxNodes) {
            exhausted_ = true;
            return false;
        }
    }
    return false;
}

IlpResult
IlpSolver::solve(uint64_t maxNodes)
{
    stats_ = {};
    haveSolution_ = false;
    exhausted_ = false;
    bestObjective_ = 0;

    minAct_.assign(constraints_.size(), 0);
    maxAct_.assign(constraints_.size(), 0);
    for (uint32_t ci = 0; ci < constraints_.size(); ++ci) {
        for (const LinTerm& term : constraints_[ci].terms) {
            minAct_[ci] += std::min<int64_t>(0, term.coeff);
            maxAct_[ci] += std::max<int64_t>(0, term.coeff);
        }
    }

    branchOrder_.resize(numVars_);
    for (uint32_t v = 0; v < numVars_; ++v)
        branchOrder_[v] = v;
    std::stable_sort(branchOrder_.begin(), branchOrder_.end(),
                     [&](uint32_t a, uint32_t b) {
                         return occurs_[a].size() > occurs_[b].size();
                     });

    inQueue_.assign(constraints_.size(), false);
    queue_.clear();
    std::vector<int8_t> assign(numVars_, kUnassigned);
    std::vector<uint32_t> root_trail;
    for (uint32_t ci = 0; ci < constraints_.size(); ++ci)
        enqueueConstraint(ci);
    if (!propagate(assign, root_trail))
        return IlpResult::Infeasible;

    search(assign, maxNodes);
    if (haveSolution_)
        return IlpResult::Feasible;
    return exhausted_ ? IlpResult::Exhausted : IlpResult::Infeasible;
}

} // namespace hecate::solver
