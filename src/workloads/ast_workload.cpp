#include "workloads/ast_workload.hpp"

#include <algorithm>

namespace hecate::workloads::astw {

namespace {

int64_t
imin(int64_t a, int64_t b)
{
    return a < b ? a : b;
}

/** Iterative generator (see workloads/rendertree.cpp for rationale). */
NodeV*
generate(ProgramV& prog, Rng& rng, size_t target)
{
    auto make = [&]() {
        prog.arena.push_back(std::make_unique<NodeV>());
        NodeV* node = prog.arena.back().get();
        node->lit0 = rng.range(-20, 20);
        node->op0 = rng.range(0, 6);
        return node;
    };
    NodeV* root = make();
    std::vector<std::pair<NodeV*, int>> open{{root, 0}};
    while (prog.arena.size() < target && !open.empty()) {
        size_t pick = rng.below(open.size());
        auto [parent, depth] = open[pick];
        NodeV* child = make();
        parent->cs.push_back(child);
        if (depth + 1 < 40)
            open.emplace_back(child, depth + 1);
        if (parent->cs.size() >= 2 + rng.below(4)) {
            open[pick] = open.back();
            open.pop_back();
        }
    }
    return root;
}

NodeL*
convert(ProgramL& prog, const NodeV* src)
{
    prog.arena.push_back(std::make_unique<NodeL>());
    NodeL* node = prog.arena.back().get();
    node->lit0 = src->lit0;
    node->op0 = src->op0;
    NodeL* prev = nullptr;
    for (const NodeV* child : src->cs) {
        NodeL* converted = convert(prog, child);
        if (prev == nullptr) {
            node->fc = converted;
        } else {
            prev->nx = converted;
        }
        prev = converted;
    }
    return node;
}

// --- unfused linked-list passes --------------------------------------------

void
passDesugarDecr(NodeL* n)
{
    if (n == nullptr)
        return;
    passDesugarDecr(n->fc);
    passDesugarDecr(n->nx);
    n->a1 = n->lit0 + (n->fc != nullptr ? n->fc->a1s : 0);
    n->a1s = n->a1 + (n->nx != nullptr ? n->nx->a1s : 0);
}

void
passDesugarIncr(NodeL* n)
{
    if (n == nullptr)
        return;
    passDesugarIncr(n->fc);
    passDesugarIncr(n->nx);
    n->a2 = n->a1 + n->op0 + (n->fc != nullptr ? n->fc->a2s : 0);
    n->a2s = n->a2 + (n->nx != nullptr ? n->nx->a2s : 0);
}

void
passConstProp(NodeL* n)
{
    if (n == nullptr)
        return;
    // inherited environment first (pre-order) ...
    if (n->fc != nullptr)
        n->fc->env = n->env + n->op0;
    if (n->nx != nullptr)
        n->nx->env = n->env;
    passConstProp(n->fc);
    passConstProp(n->nx);
    // ... synthesized const-ness after (post-order)
    n->kc = imin(n->env, n->lit0) + (n->fc != nullptr ? n->fc->kcs : 0);
    n->kcs = n->kc + (n->nx != nullptr ? n->nx->kcs : 0);
}

void
passVarRefs(NodeL* n)
{
    if (n == nullptr)
        return;
    passVarRefs(n->fc);
    passVarRefs(n->nx);
    n->vr = n->kc + (n->fc != nullptr ? n->fc->vrs : 0);
    n->vrs = n->vr + (n->nx != nullptr ? n->nx->vrs : 0);
}

void
passConstFold(NodeL* n)
{
    if (n == nullptr)
        return;
    passConstFold(n->fc);
    passConstFold(n->nx);
    n->cf = 2 * n->lit0 + n->vr + (n->fc != nullptr ? n->fc->cfs : 0);
    n->cfs = n->cf + (n->nx != nullptr ? n->nx->cfs : 0);
}

void
passDeadBranch(NodeL* n)
{
    if (n == nullptr)
        return;
    passDeadBranch(n->fc);
    passDeadBranch(n->nx);
    n->db = (n->kc > 0 ? 1 : 0) + (n->fc != nullptr ? n->fc->dbs : 0);
    n->dbs = n->db + (n->nx != nullptr ? n->nx->dbs : 0);
}

// --- fused linked-list ------------------------------------------------------

void
fusedCalcL(NodeL* n)
{
    if (n == nullptr)
        return;
    if (n->fc != nullptr)
        n->fc->env = n->env + n->op0;
    if (n->nx != nullptr)
        n->nx->env = n->env;
    fusedCalcL(n->fc);
    fusedCalcL(n->nx);
    NodeL* f = n->fc;
    NodeL* x = n->nx;
    n->a1 = n->lit0 + (f != nullptr ? f->a1s : 0);
    n->a1s = n->a1 + (x != nullptr ? x->a1s : 0);
    n->a2 = n->a1 + n->op0 + (f != nullptr ? f->a2s : 0);
    n->a2s = n->a2 + (x != nullptr ? x->a2s : 0);
    n->kc = imin(n->env, n->lit0) + (f != nullptr ? f->kcs : 0);
    n->kcs = n->kc + (x != nullptr ? x->kcs : 0);
    n->vr = n->kc + (f != nullptr ? f->vrs : 0);
    n->vrs = n->vr + (x != nullptr ? x->vrs : 0);
    n->cf = 2 * n->lit0 + n->vr + (f != nullptr ? f->cfs : 0);
    n->cfs = n->cf + (x != nullptr ? x->cfs : 0);
    n->db = (n->kc > 0 ? 1 : 0) + (f != nullptr ? f->dbs : 0);
    n->dbs = n->db + (x != nullptr ? x->dbs : 0);
}

// --- vector layout ----------------------------------------------------------

struct Sums {
    int64_t a1 = 0, a2 = 0, kc = 0, vr = 0, cf = 0, db = 0;
};

void
computeSynthesized(NodeV* n, const Sums& s)
{
    n->a1 = n->lit0 + s.a1;
    n->a2 = n->a1 + n->op0 + s.a2;
    n->kc = imin(n->env, n->lit0) + s.kc;
    n->vr = n->kc + s.vr;
    n->cf = 2 * n->lit0 + n->vr + s.cf;
    n->db = (n->kc > 0 ? 1 : 0) + s.db;
}

void
accumulate(Sums& s, const NodeV* c)
{
    s.a1 += c->a1;
    s.a2 += c->a2;
    s.kc += c->kc;
    s.vr += c->vr;
    s.cf += c->cf;
    s.db += c->db;
}

void
fusedBodyV(NodeV* n)
{
    Sums sums;
    for (NodeV* c : n->cs) {
        c->env = n->env + n->op0;
        fusedBodyV(c);
        accumulate(sums, c);
    }
    computeSynthesized(n, sums);
}

void
topDown(NodeV* n, int depth, int spawn, std::vector<NodeV*>& frontier)
{
    for (NodeV* c : n->cs) {
        c->env = n->env + n->op0;
        if (depth + 1 >= spawn) {
            frontier.push_back(c);
        } else {
            topDown(c, depth + 1, spawn, frontier);
        }
    }
}

void
accumulateTop(NodeV* n, int depth, int spawn)
{
    if (depth + 1 < spawn) {
        for (NodeV* c : n->cs)
            accumulateTop(c, depth + 1, spawn);
    }
    Sums sums;
    for (NodeV* c : n->cs)
        accumulate(sums, c);
    computeSynthesized(n, sums);
}

} // namespace

namespace {

/** DFS-order rebuild (see workloads/rendertree.cpp). */
NodeV*
compact(ProgramV& dst, const NodeV* src)
{
    dst.arena.push_back(std::make_unique<NodeV>(*src));
    NodeV* node = dst.arena.back().get();
    node->cs.clear();
    for (const NodeV* child : src->cs)
        node->cs.push_back(compact(dst, child));
    return node;
}

} // namespace

ProgramV
buildProgramV(size_t targetNodes, uint64_t seed)
{
    ProgramV grown;
    grown.arena.reserve(targetNodes + 16);
    Rng rng(seed);
    grown.root = generate(grown, rng, std::max<size_t>(targetNodes, 1));

    ProgramV prog;
    prog.arena.reserve(grown.arena.size());
    prog.root = compact(prog, grown.root);
    return prog;
}

ProgramL
buildProgramL(size_t targetNodes, uint64_t seed)
{
    ProgramV source = buildProgramV(targetNodes, seed);
    ProgramL prog;
    prog.arena.reserve(source.arena.size());
    prog.root = convert(prog, source.root);
    return prog;
}

void
clearOutputs(ProgramL& prog)
{
    for (auto& node : prog.arena) {
        node->a1 = node->a1s = node->a2 = node->a2s = 0;
        node->env = node->kc = node->kcs = 0;
        node->vr = node->vrs = node->cf = node->cfs = 0;
        node->db = node->dbs = 0;
    }
}

void
clearOutputs(ProgramV& prog)
{
    for (auto& node : prog.arena) {
        node->a1 = node->a2 = node->env = node->kc = 0;
        node->vr = node->cf = node->db = 0;
    }
}

void
runUnfused(ProgramL& prog)
{
    prog.root->env = 1;
    passDesugarDecr(prog.root);
    passDesugarIncr(prog.root);
    passConstProp(prog.root);
    passVarRefs(prog.root);
    passConstFold(prog.root);
    passDeadBranch(prog.root);
}

void
runFusedL(ProgramL& prog)
{
    prog.root->env = 1;
    fusedCalcL(prog.root);
}

void
runFusedV(ProgramV& prog)
{
    prog.root->env = 1;
    fusedBodyV(prog.root);
}

void
runParallelV(ProgramV& prog, ThreadPool& pool, int spawnDepth)
{
    prog.root->env = 1;
    std::vector<NodeV*> frontier;
    topDown(prog.root, 0, std::max(spawnDepth, 1), frontier);
    for (NodeV* subtree : frontier)
        pool.submit([subtree] { fusedBodyV(subtree); });
    pool.waitAll();
    accumulateTop(prog.root, 0, std::max(spawnDepth, 1));
}

namespace {

uint64_t
mix(uint64_t h, int64_t v)
{
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
}

uint64_t
checksumL(const NodeL* n, uint64_t h)
{
    if (n == nullptr)
        return h;
    h = mix(h, n->a1);
    h = mix(h, n->a2);
    h = mix(h, n->env);
    h = mix(h, n->kc);
    h = mix(h, n->vr);
    h = mix(h, n->cf);
    h = mix(h, n->db);
    h = checksumL(n->fc, h);
    return checksumL(n->nx, h);
}

uint64_t
checksumV(const NodeV* n, uint64_t h)
{
    h = mix(h, n->a1);
    h = mix(h, n->a2);
    h = mix(h, n->env);
    h = mix(h, n->kc);
    h = mix(h, n->vr);
    h = mix(h, n->cf);
    h = mix(h, n->db);
    for (const NodeV* c : n->cs)
        h = checksumV(c, h);
    return h;
}

} // namespace

uint64_t
checksum(const ProgramL& prog)
{
    return checksumL(prog.root, 0);
}

uint64_t
checksum(const ProgramV& prog)
{
    return checksumV(prog.root, 0);
}

} // namespace hecate::workloads::astw
