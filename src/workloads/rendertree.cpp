#include "workloads/rendertree.hpp"

#include <algorithm>

namespace hecate::workloads::render {

namespace {

int64_t
imax(int64_t a, int64_t b)
{
    return a > b ? a : b;
}

} // namespace

// --- unfused linked-list passes (virtual dispatch, Fig. 1 style) -----------

void
InnerL::passFlexWidths()
{
    if (fc != nullptr)
        fc->passFlexWidths();
    if (nx != nullptr)
        nx->passFlexWidths();
    wf = imax(w0, fc != nullptr ? fc->wf : 0);
}

void
LeafL::passFlexWidths()
{
    if (nx != nullptr)
        nx->passFlexWidths();
    wf = w0;
}

void
InnerL::passRelWidths()
{
    if (fc != nullptr)
        fc->passRelWidths();
    if (nx != nullptr)
        nx->passRelWidths();
    w = imax(wf, fc != nullptr ? fc->w1 : 0);
    w1 = imax(w, nx != nullptr ? nx->w1 : 0);
}

void
LeafL::passRelWidths()
{
    if (nx != nullptr)
        nx->passRelWidths();
    w = wf;
    w1 = imax(w, nx != nullptr ? nx->w1 : 0);
}

void
InnerL::passFonts()
{
    if (fc != nullptr)
        fc->fs = imax(fs, fs1);
    if (nx != nullptr)
        nx->fs = fs;
    if (fc != nullptr)
        fc->passFonts();
    if (nx != nullptr)
        nx->passFonts();
}

void
LeafL::passFonts()
{
    if (nx != nullptr) {
        nx->fs = fs;
        nx->passFonts();
    }
}

void
InnerL::passHeights()
{
    if (fc != nullptr)
        fc->passHeights();
    if (nx != nullptr)
        nx->passHeights();
    h = imax(h0, fc != nullptr ? fc->h1 : 0) + fs;
    h1 = h + (nx != nullptr ? nx->h1 : 0);
}

void
LeafL::passHeights()
{
    if (nx != nullptr)
        nx->passHeights();
    h = h0 + fs;
    h1 = h + (nx != nullptr ? nx->h1 : 0);
}

void
InnerL::passPositions()
{
    if (fc != nullptr) {
        fc->ax = ax + 1;
        fc->ay = ay + 1;
    }
    if (nx != nullptr) {
        nx->ax = ax + w0;
        nx->ay = ay;
    }
    if (fc != nullptr)
        fc->passPositions();
    if (nx != nullptr)
        nx->passPositions();
}

void
LeafL::passPositions()
{
    if (nx != nullptr) {
        nx->ax = ax + w0;
        nx->ay = ay;
        nx->passPositions();
    }
}

// --- fused linked-list (Grafter / HecateL schedule) ------------------------

void
InnerL::fusedCalc()
{
    // inherited writes first (pre-order)
    if (fc != nullptr) {
        fc->fs = imax(fs, fs1);
        fc->ax = ax + 1;
        fc->ay = ay + 1;
        fc->fusedCalc();
    }
    if (nx != nullptr) {
        nx->fs = fs;
        nx->ax = ax + w0;
        nx->ay = ay;
        nx->fusedCalc();
    }
    // synthesized attributes (post-order)
    wf = imax(w0, fc != nullptr ? fc->wf : 0);
    w = imax(wf, fc != nullptr ? fc->w1 : 0);
    w1 = imax(w, nx != nullptr ? nx->w1 : 0);
    h = imax(h0, fc != nullptr ? fc->h1 : 0) + fs;
    h1 = h + (nx != nullptr ? nx->h1 : 0);
}

void
LeafL::fusedCalc()
{
    if (nx != nullptr) {
        nx->fs = fs;
        nx->ax = ax + w0;
        nx->ay = ay;
        nx->fusedCalc();
    }
    wf = w0;
    w = wf;
    w1 = imax(w, nx != nullptr ? nx->w1 : 0);
    h = h0 + fs;
    h1 = h + (nx != nullptr ? nx->h1 : 0);
}

// --- vector layout ----------------------------------------------------------

void
InnerV::finalize(int64_t maxChildW, int64_t sumChildH)
{
    wf = imax(w0, cs.empty() ? 0 : cs.front()->wf);
    w = imax(wf, maxChildW);
    h1 = sumChildH;
    h = imax(h0, sumChildH) + fs;
}

void
LeafV::finalize(int64_t, int64_t)
{
    wf = w0;
    w = wf;
    h1 = 0;
    h = h0 + fs;
}

void
InnerV::fusedCalc()
{
    int64_t max_child_w = 0;
    int64_t sum_child_h = 0;
    int64_t off = 0;
    for (BoxV* c : cs) {
        c->fs = imax(fs, fs1);
        c->ax = ax + 1 + off;
        off += c->w0;
        c->ay = ay + 1;
        c->fusedCalc();
        max_child_w = imax(max_child_w, c->w);
        sum_child_h += c->h;
    }
    // finalize() inlined: one virtual dispatch per node, as generated.
    wf = imax(w0, cs.empty() ? 0 : cs.front()->wf);
    w = imax(wf, max_child_w);
    h1 = sum_child_h;
    h = imax(h0, sum_child_h) + fs;
}

void
LeafV::fusedCalc()
{
    wf = w0;
    w = wf;
    h1 = 0;
    h = h0 + fs;
}

namespace {

/** Inherited writes for every child of @p b (parallel variant). */
void
setChildrenInherited(BoxV* b)
{
    int64_t off = 0;
    for (BoxV* c : b->cs) {
        c->fs = imax(b->fs, b->fs1);
        c->ax = b->ax + 1 + off;
        off += c->w0;
        c->ay = b->ay + 1;
    }
}

/** Top-down phase of the parallel variant: seed inherited attributes
 *  down to the spawn frontier and collect frontier subtree roots. */
void
topDown(BoxV* b, int depth, int spawn, std::vector<BoxV*>& frontier)
{
    setChildrenInherited(b);
    for (BoxV* c : b->cs) {
        if (depth + 1 >= spawn) {
            frontier.push_back(c);
        } else {
            topDown(c, depth + 1, spawn, frontier);
        }
    }
}

/** Bottom-up accumulation over the sequential top region. */
void
accumulateTop(BoxV* b, int depth, int spawn)
{
    if (depth + 1 < spawn) {
        for (BoxV* c : b->cs)
            accumulateTop(c, depth + 1, spawn);
    }
    int64_t max_child_w = 0;
    int64_t sum_child_h = 0;
    for (BoxV* c : b->cs) {
        max_child_w = imax(max_child_w, c->w);
        sum_child_h += c->h;
    }
    b->finalize(max_child_w, sum_child_h);
}

/**
 * Iterative generator of the logical tree shape shared by both
 * layouts: grow by attaching nodes to random open positions until the
 * budget is spent (a branching process would die out on unlucky
 * draws). Returns parent indices; index 0 is the root.
 */
struct ShapeSpec {
    std::vector<uint32_t> parent; // parent[0] unused
    std::vector<int64_t> w0, h0, fs1;
    std::vector<bool> leaf;
};

ShapeSpec
makeShape(size_t target, uint64_t seed)
{
    ShapeSpec shape;
    Rng rng(seed);
    target = std::max<size_t>(target, 1);
    shape.parent.assign(1, 0);
    std::vector<uint32_t> child_count(1, 0);
    std::vector<std::pair<uint32_t, int>> open{{0, 0}};
    auto add_inputs = [&]() {
        shape.w0.push_back(rng.range(1, 50));
        shape.h0.push_back(rng.range(1, 40));
        shape.fs1.push_back(rng.range(0, 4));
    };
    add_inputs();
    while (shape.parent.size() < target && !open.empty()) {
        size_t pick = rng.below(open.size());
        auto [parent, depth] = open[pick];
        uint32_t child = static_cast<uint32_t>(shape.parent.size());
        shape.parent.push_back(parent);
        child_count.push_back(0);
        add_inputs();
        ++child_count[parent];
        if (depth + 1 < 40)
            open.emplace_back(child, depth + 1);
        // Close a position once it holds enough children so the tree
        // stays bushy rather than star-shaped.
        if (child_count[parent] >= 2 + rng.below(5)) {
            open[pick] = open.back();
            open.pop_back();
        }
    }
    shape.leaf.resize(shape.parent.size(), true);
    for (size_t i = 1; i < shape.parent.size(); ++i)
        shape.leaf[shape.parent[i]] = false;
    return shape;
}

uint64_t
mix(uint64_t h, int64_t v)
{
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
}

uint64_t
checksumL(const BoxL* b, uint64_t h)
{
    if (b == nullptr)
        return h;
    h = mix(h, b->wf);
    h = mix(h, b->w);
    h = mix(h, b->h);
    h = mix(h, b->fs);
    h = mix(h, b->ax);
    h = mix(h, b->ay);
    h = checksumL(b->fc, h);
    return checksumL(b->nx, h);
}

uint64_t
checksumV(const BoxV* b, uint64_t h)
{
    h = mix(h, b->wf);
    h = mix(h, b->w);
    h = mix(h, b->h);
    h = mix(h, b->fs);
    h = mix(h, b->ax);
    h = mix(h, b->ay);
    for (const BoxV* c : b->cs)
        h = checksumV(c, h);
    return h;
}

} // namespace

DocumentV
buildDocumentV(size_t targetNodes, uint64_t seed)
{
    ShapeSpec shape = makeShape(targetNodes, seed);
    size_t n = shape.parent.size();

    // Children lists in index order (stable across layouts).
    std::vector<std::vector<uint32_t>> kids(n);
    for (uint32_t i = 1; i < n; ++i)
        kids[shape.parent[i]].push_back(i);

    DocumentV doc;
    doc.arena.reserve(n);
    // Allocate in DFS order for parent/child memory adjacency.
    std::vector<BoxV*> by_index(n, nullptr);
    std::vector<uint32_t> stack{0};
    std::vector<uint32_t> dfs_order;
    dfs_order.reserve(n);
    while (!stack.empty()) {
        uint32_t i = stack.back();
        stack.pop_back();
        dfs_order.push_back(i);
        for (auto it = kids[i].rbegin(); it != kids[i].rend(); ++it)
            stack.push_back(*it);
    }
    for (uint32_t i : dfs_order) {
        if (shape.leaf[i]) {
            doc.arena.push_back(std::make_unique<LeafV>());
        } else {
            doc.arena.push_back(std::make_unique<InnerV>());
        }
        BoxV* node = doc.arena.back().get();
        node->w0 = shape.w0[i];
        node->h0 = shape.h0[i];
        node->fs1 = shape.fs1[i];
        by_index[i] = node;
    }
    // Fill children arrays in DFS order so their heap buffers land
    // adjacent to the nodes that iterate them.
    for (uint32_t i : dfs_order) {
        by_index[i]->cs.reserve(kids[i].size());
        for (uint32_t child : kids[i])
            by_index[i]->cs.push_back(by_index[child]);
    }
    doc.root = by_index[0];
    return doc;
}

DocumentL
buildDocumentL(size_t targetNodes, uint64_t seed)
{
    ShapeSpec shape = makeShape(targetNodes, seed);
    size_t n = shape.parent.size();
    std::vector<std::vector<uint32_t>> kids(n);
    for (uint32_t i = 1; i < n; ++i)
        kids[shape.parent[i]].push_back(i);

    DocumentL doc;
    doc.arena.reserve(n);
    std::vector<BoxL*> by_index(n, nullptr);
    std::vector<uint32_t> stack{0};
    while (!stack.empty()) {
        uint32_t i = stack.back();
        stack.pop_back();
        if (shape.leaf[i]) {
            doc.arena.push_back(std::make_unique<LeafL>());
        } else {
            doc.arena.push_back(std::make_unique<InnerL>());
        }
        BoxL* node = doc.arena.back().get();
        node->w0 = shape.w0[i];
        node->h0 = shape.h0[i];
        node->fs1 = shape.fs1[i];
        by_index[i] = node;
        for (auto it = kids[i].rbegin(); it != kids[i].rend(); ++it)
            stack.push_back(*it);
    }
    for (uint32_t i = 0; i < n; ++i) {
        BoxL* prev = nullptr;
        for (uint32_t child : kids[i]) {
            if (prev == nullptr) {
                by_index[i]->fc = by_index[child];
            } else {
                prev->nx = by_index[child];
            }
            prev = by_index[child];
        }
    }
    doc.root = by_index[0];
    return doc;
}

void
clearOutputs(DocumentL& doc)
{
    for (auto& node : doc.arena) {
        node->wf = node->w = node->w1 = node->h = node->h1 = 0;
        node->fs = node->ax = node->ay = 0;
    }
}

void
clearOutputs(DocumentV& doc)
{
    for (auto& node : doc.arena) {
        node->wf = node->w = node->h = node->h1 = 0;
        node->fs = node->ax = node->ay = 0;
    }
}

void
runUnfused(DocumentL& doc)
{
    doc.root->fs = doc.rootFs; // Document seeds the inherited attributes
    doc.root->ax = 0;
    doc.root->ay = 0;
    doc.root->passFlexWidths();
    doc.root->passRelWidths();
    doc.root->passFonts();
    doc.root->passHeights();
    doc.root->passPositions();
}

void
runFusedL(DocumentL& doc)
{
    doc.root->fs = doc.rootFs;
    doc.root->ax = 0;
    doc.root->ay = 0;
    doc.root->fusedCalc();
}

void
runFusedV(DocumentV& doc)
{
    doc.root->fs = doc.rootFs;
    doc.root->ax = 0;
    doc.root->ay = 0;
    doc.root->fusedCalc();
}

void
runParallelV(DocumentV& doc, ThreadPool& pool, int spawnDepth)
{
    doc.root->fs = doc.rootFs;
    doc.root->ax = 0;
    doc.root->ay = 0;
    std::vector<BoxV*> frontier;
    topDown(doc.root, 0, std::max(spawnDepth, 1), frontier);
    for (BoxV* subtree : frontier)
        pool.submit([subtree] { subtree->fusedCalc(); });
    pool.waitAll();
    accumulateTop(doc.root, 0, std::max(spawnDepth, 1));
}

uint64_t
checksum(const DocumentL& doc)
{
    return checksumL(doc.root, 0);
}

uint64_t
checksum(const DocumentV& doc)
{
    return checksumV(doc.root, 0);
}

} // namespace hecate::workloads::render
