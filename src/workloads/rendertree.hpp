#pragma once

/**
 * @file
 * The RenderTree performance workload of §6.2 / Fig. 11: compiled C++
 * node classes written exactly the way codegen/ emits them — abstract
 * base per interface, virtual traversal methods, subclasses per
 * grammar class — in four variants:
 *
 *  - unfused linked-list: five separate traversals (flex widths,
 *    relative widths, fonts, heights, positions) — the baseline all
 *    Fig. 11 curves are normalized against;
 *  - Grafter/HecateL fused linked-list: one traversal (Grafter's
 *    output and Hecate's linked-list schedule coincide, §6.2);
 *  - HecateV fused vector: children in std::vector, fold
 *    accumulation fused into the child loop (Fig. 14(b));
 *  - HecateP "de-fused" parallel vector: parallel child visits, then a
 *    sequential accumulation loop (Fig. 14(c)), run on a thread pool.
 *
 * Builders produce the same logical document tree in both layouts so
 * variants can be checked for value agreement; checksum() defeats
 * dead-code elimination in benchmarks.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace hecate::workloads::render {

/** Linked-list (first-child / next-sibling) box: the Fig. 1 shape. */
struct BoxL {
    // inputs
    int64_t w0 = 0, h0 = 0, fs1 = 0;
    // outputs
    int64_t wf = 0, w = 0, w1 = 0, h = 0, h1 = 0, fs = 0, ax = 0, ay = 0;
    BoxL* nx = nullptr;
    BoxL* fc = nullptr;

    virtual ~BoxL() = default;
    virtual void passFlexWidths() = 0;
    virtual void passRelWidths() = 0;
    virtual void passFonts() = 0;
    virtual void passHeights() = 0;
    virtual void passPositions() = 0;
    virtual void fusedCalc() = 0;
};

/** Container box (Horiz-style rules). */
struct InnerL final : BoxL {
    void passFlexWidths() override;
    void passRelWidths() override;
    void passFonts() override;
    void passHeights() override;
    void passPositions() override;
    void fusedCalc() override;
};

/** Leaf box (Text-style rules). */
struct LeafL final : BoxL {
    void passFlexWidths() override;
    void passRelWidths() override;
    void passFonts() override;
    void passHeights() override;
    void passPositions() override;
    void fusedCalc() override;
};

/** Vector-layout box. */
struct BoxV {
    int64_t w0 = 0, h0 = 0, fs1 = 0;
    int64_t wf = 0, w = 0, h = 0, h1 = 0, fs = 0, ax = 0, ay = 0;
    std::vector<BoxV*> cs;

    virtual ~BoxV() = default;
    /** Fully fused visit (Fig. 14(b)). */
    virtual void fusedCalc() = 0;
    /** Synthesized attributes from pre-accumulated child folds. */
    virtual void finalize(int64_t maxChildW, int64_t sumChildH) = 0;
};

struct InnerV final : BoxV {
    void fusedCalc() override;
    void finalize(int64_t maxChildW, int64_t sumChildH) override;
};

struct LeafV final : BoxV {
    void fusedCalc() override;
    void finalize(int64_t maxChildW, int64_t sumChildH) override;
};

/** A linked-list document; owns its nodes. */
struct DocumentL {
    std::vector<std::unique_ptr<BoxL>> arena;
    BoxL* root = nullptr;
    int64_t rootFs = 12;

    size_t size() const { return arena.size(); }
};

/** A vector-layout document; owns its nodes. */
struct DocumentV {
    std::vector<std::unique_ptr<BoxV>> arena;
    BoxV* root = nullptr;
    int64_t rootFs = 12;

    size_t size() const { return arena.size(); }
};

/**
 * Build a random document of roughly @p targetNodes boxes (same
 * construction seed => same logical tree in both layouts).
 */
DocumentL buildDocumentL(size_t targetNodes, uint64_t seed);
DocumentV buildDocumentV(size_t targetNodes, uint64_t seed);

/** Reset all output fields (between benchmark iterations). */
void clearOutputs(DocumentL& doc);
void clearOutputs(DocumentV& doc);

/** Unfused baseline: five separate linked-list traversals. */
void runUnfused(DocumentL& doc);

/** Grafter / HecateL: single fused linked-list traversal. */
void runFusedL(DocumentL& doc);

/** HecateV: single fused vector traversal. */
void runFusedV(DocumentV& doc);

/**
 * HecateP: Fig. 14(c) de-fused vector traversal; subtrees below
 * @p spawnDepth levels are submitted to @p pool.
 */
void runParallelV(DocumentV& doc, ThreadPool& pool, int spawnDepth = 2);

/** Order-independent checksum over all outputs. */
uint64_t checksum(const DocumentL& doc);
uint64_t checksum(const DocumentV& doc);

} // namespace hecate::workloads::render
