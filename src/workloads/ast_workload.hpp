#pragma once

/**
 * @file
 * The AST performance workload of Appendix A / Fig. 16: a small
 * imperative-language AST with six compiler passes (decrement and
 * increment desugaring, constant propagation with an inherited
 * environment, variable-reference replacement, constant folding, and
 * unreachable-branch elimination), modeled as attribute computations
 * exactly like the codegen output would be.
 *
 * Variants mirror the paper: unfused (6 traversals), Grafter/HecateL
 * fused linked-list, HecateV fused vector, HecateP parallel vector
 * ("parallel schedules ... take advantage of the data-independency
 * between optimization passes on different AST functions").
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace hecate::workloads::astw {

/** Linked-list (first-child / next-sibling) AST node. */
struct NodeL {
    // inputs
    int64_t lit0 = 0, op0 = 0;
    // pass outputs (chain helpers suffixed 's')
    int64_t a1 = 0, a1s = 0;  ///< desugarDecr
    int64_t a2 = 0, a2s = 0;  ///< desugarIncr
    int64_t env = 0;          ///< constProp environment (inherited)
    int64_t kc = 0, kcs = 0;  ///< constProp
    int64_t vr = 0, vrs = 0;  ///< varRefsToConst
    int64_t cf = 0, cfs = 0;  ///< constFold
    int64_t db = 0, dbs = 0;  ///< deadBranch
    NodeL* fc = nullptr;
    NodeL* nx = nullptr;
};

/** Vector-layout AST node. */
struct NodeV {
    int64_t lit0 = 0, op0 = 0;
    int64_t a1 = 0, a2 = 0, env = 0, kc = 0, vr = 0, cf = 0, db = 0;
    std::vector<NodeV*> cs;
};

/** Linked-list program; owns its nodes. */
struct ProgramL {
    std::vector<std::unique_ptr<NodeL>> arena;
    NodeL* root = nullptr;
    size_t size() const { return arena.size(); }
};

/** Vector-layout program; owns its nodes. */
struct ProgramV {
    std::vector<std::unique_ptr<NodeV>> arena;
    NodeV* root = nullptr;
    size_t size() const { return arena.size(); }
};

/** Build a random AST of roughly @p targetNodes nodes. */
ProgramL buildProgramL(size_t targetNodes, uint64_t seed);
ProgramV buildProgramV(size_t targetNodes, uint64_t seed);

void clearOutputs(ProgramL& prog);
void clearOutputs(ProgramV& prog);

/** Unfused baseline: six separate traversals. */
void runUnfused(ProgramL& prog);

/** Grafter / HecateL: single fused linked-list traversal. */
void runFusedL(ProgramL& prog);

/** HecateV: single fused vector traversal. */
void runFusedV(ProgramV& prog);

/** HecateP: parallel subtree passes with a sequential top region. */
void runParallelV(ProgramV& prog, ThreadPool& pool, int spawnDepth = 2);

/** Order-independent checksum over pass outputs (helpers excluded). */
uint64_t checksum(const ProgramL& prog);
uint64_t checksum(const ProgramV& prog);

} // namespace hecate::workloads::astw
