#include "support/thread_pool.hpp"

#include <utility>

namespace hecate {

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace hecate
