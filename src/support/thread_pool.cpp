#include "support/thread_pool.hpp"

#include <exception>
#include <utility>

namespace hecate {

ThreadPool::ThreadPool(size_t workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto& thread : threads_)
        thread.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::waitAll()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

bool
ThreadPool::runOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    try {
        task();
    } catch (const std::exception& error) {
        recordFailure(error.what());
    } catch (...) {
        recordFailure("task threw a non-std::exception value");
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--inFlight_ == 0)
            idle_.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // Catch at the task boundary: a throwing task must not take
        // down the worker (and with it the whole pool/service).
        try {
            task();
        } catch (const std::exception& error) {
            recordFailure(error.what());
        } catch (...) {
            recordFailure("task threw a non-std::exception value");
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::recordFailure(const char* what)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++failedTasks_;
    lastError_ = what;
}

size_t
ThreadPool::failedTaskCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failedTasks_;
}

std::string
ThreadPool::lastTaskError() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lastError_;
}

} // namespace hecate
