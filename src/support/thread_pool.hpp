#pragma once

/**
 * @file
 * Minimal fixed-size thread pool used by the parallel traversal
 * executor (the HecateP variant of §6.2). Tasks are arbitrary
 * std::function<void()>; waitAll() provides the join half of the
 * fork-join regions produced by the `parallel` traversal construct.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hecate {

/** Fixed-size worker pool with a fork-join style waitAll barrier. */
class ThreadPool {
  public:
    /** Spin up @p workers threads (defaults to hardware concurrency). */
    explicit ThreadPool(size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void waitAll();

    /**
     * Pop and run one queued task on the calling thread; false when the
     * queue is empty. This is the help-join primitive: a thread waiting
     * on a subset of tasks (runtime::Executor's fork-join regions)
     * drains the queue instead of blocking, so nested forks cannot
     * deadlock a fixed-size pool.
     */
    bool runOne();

    size_t workerCount() const { return threads_.size(); }

    /**
     * Number of tasks that exited by throwing. Exceptions are caught
     * at the task boundary (record-and-continue) so one bad task
     * cannot std::terminate the pool's worker — long-running services
     * built on the pool (service/SynthService) survive it.
     */
    size_t failedTaskCount() const;

    /** what() of the most recent throwing task; empty when none. */
    std::string lastTaskError() const;

  private:
    void workerLoop();
    void recordFailure(const char* what);

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    size_t inFlight_ = 0;
    bool stopping_ = false;
    size_t failedTasks_ = 0;
    std::string lastError_;
};

} // namespace hecate
