#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation. All randomized pieces
 * of Hecate (tree sampling, workload generation, property tests) take a
 * seed so every experiment is reproducible.
 */

#include <cstdint>
#include <limits>

namespace hecate {

/**
 * One full SplitMix64 step: advance @p x by the golden-ratio increment
 * and scramble. Use this to derive independent stream seeds (e.g. one
 * per verification round) from a base seed — unlike ad-hoc 32-bit
 * mixing, nearby seeds produce uncorrelated streams.
 */
constexpr uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * SplitMix64 generator: tiny, fast, and statistically solid for the
 * workload-generation purposes we have (not cryptographic).
 */
class Rng {
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

    /** Next raw 64-bit value. */
    uint64_t next()
    {
        state_ += 0x9e3779b97f4a7c15ULL;
        uint64_t z = state_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t below(uint64_t bound) { return next() % bound; }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability p (0..1). */
    bool chance(double p)
    {
        return static_cast<double>(next()) <
               p * static_cast<double>(std::numeric_limits<uint64_t>::max());
    }

  private:
    uint64_t state_;
};

} // namespace hecate
