#include "support/diagnostics.hpp"

namespace hecate {

std::string
SourceLoc::str() const
{
    if (!isValid())
        return "?";
    return std::to_string(line) + ":" + std::to_string(column);
}

UserError::UserError(const std::string& message, SourceLoc loc)
    : Error(loc.isValid() ? loc.str() + ": " + message : message), loc_(loc)
{
}

void
userError(const std::string& message, SourceLoc loc)
{
    throw UserError(message, loc);
}

void
internalError(const std::string& message)
{
    throw InternalError(message);
}

} // namespace hecate
