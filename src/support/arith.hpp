#pragma once

/**
 * @file
 * Wrapping int64 arithmetic shared by every evaluator.
 *
 * Hecate semantics are "int64 with two's-complement wraparound": the
 * reference interpreter, the bytecode executor and the vectorized
 * kernels must produce byte-identical values on the *full* input
 * domain, including INT64_MIN/INT64_MAX, and the differential tests
 * run under UBSan with -fno-sanitize-recover. Raw signed +,-,* are
 * undefined on overflow and INT64_MIN / -1 traps in hardware, so all
 * evaluators route arithmetic through these helpers: unsigned
 * arithmetic wraps by definition, and the division corner case is
 * pinned to the wrapped quotient (INT64_MIN) / remainder (0).
 */

#include <cstdint>

namespace hecate {

inline int64_t
wrapAdd(int64_t x, int64_t y)
{
    return static_cast<int64_t>(static_cast<uint64_t>(x) +
                                static_cast<uint64_t>(y));
}

inline int64_t
wrapSub(int64_t x, int64_t y)
{
    return static_cast<int64_t>(static_cast<uint64_t>(x) -
                                static_cast<uint64_t>(y));
}

inline int64_t
wrapMul(int64_t x, int64_t y)
{
    return static_cast<int64_t>(static_cast<uint64_t>(x) *
                                static_cast<uint64_t>(y));
}

inline int64_t
wrapNeg(int64_t x)
{
    return static_cast<int64_t>(0 - static_cast<uint64_t>(x));
}

/** abs with wrapAbs(INT64_MIN) == INT64_MIN (the wrapped negation). */
inline int64_t
wrapAbs(int64_t x)
{
    return x < 0 ? wrapNeg(x) : x;
}

/** x / y with x/0 == 0 and INT64_MIN / -1 == INT64_MIN (wrapped). */
inline int64_t
wrapDiv(int64_t x, int64_t y)
{
    if (y == 0)
        return 0;
    if (y == -1)
        return wrapNeg(x);
    return x / y;
}

/** x % y with x%0 == 0 and INT64_MIN % -1 == 0 (wrapped identity). */
inline int64_t
wrapMod(int64_t x, int64_t y)
{
    if (y == 0)
        return 0;
    if (y == -1)
        return 0;
    return x % y;
}

} // namespace hecate
