#pragma once

/**
 * @file
 * Lightweight wall-clock timer used by the synthesis benchmarks
 * (Table 2, Fig. 15) to report end-to-end synthesis times.
 */

#include <chrono>

namespace hecate {

/** Monotonic stopwatch; starts on construction. */
class Timer {
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction/reset. */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Elapsed milliseconds since construction/reset. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace hecate
