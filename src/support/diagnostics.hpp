#pragma once

/**
 * @file
 * Diagnostics: source locations, structured errors, and the exception
 * types used across the Hecate front end and engines.
 *
 * Following the paper's tooling split, user-level mistakes (bad DSL
 * input, infeasible synthesis queries) surface as UserError; internal
 * invariant violations surface as InternalError (the gem5 fatal/panic
 * distinction).
 */

#include <cstdint>
#include <stdexcept>
#include <string>

namespace hecate {

/** A position inside a DSL source buffer (1-based line/column). */
struct SourceLoc {
    uint32_t line = 0;
    uint32_t column = 0;

    bool isValid() const { return line != 0; }

    /** Render as "line:col" (or "?" when unknown). */
    std::string str() const;
};

/** Base class for all Hecate errors. */
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/** The user supplied invalid input (parse error, bad grammar, ...). */
class UserError : public Error {
  public:
    UserError(const std::string& message, SourceLoc loc = {});

    SourceLoc loc() const { return loc_; }

  private:
    SourceLoc loc_;
};

/** An internal invariant was violated (a Hecate bug). */
class InternalError : public Error {
  public:
    explicit InternalError(const std::string& message)
        : Error("internal error: " + message) {}
};

/** Throw UserError with printf-free formatting helpers. */
[[noreturn]] void userError(const std::string& message, SourceLoc loc = {});

/** Throw InternalError. */
[[noreturn]] void internalError(const std::string& message);

/** Assert an invariant; throws InternalError when violated. */
inline void
checkInvariant(bool condition, const char* message)
{
    if (!condition)
        internalError(message);
}

} // namespace hecate
