#include "lang/lexer.hpp"

#include <cctype>

namespace hecate::lang {

namespace {

/** Cursor over the source buffer tracking line/column. */
class Cursor {
  public:
    explicit Cursor(std::string_view src) : src_(src) {}

    bool atEnd() const { return pos_ >= src_.size(); }
    char peek() const { return atEnd() ? '\0' : src_[pos_]; }
    char peek2() const
    {
        return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0';
    }

    char advance()
    {
        char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    SourceLoc loc() const { return {line_, col_}; }

  private:
    std::string_view src_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
};

} // namespace

std::vector<Token>
lex(std::string_view source)
{
    std::vector<Token> tokens;
    Cursor cur(source);

    auto push = [&](TokenKind kind, std::string text, SourceLoc loc) {
        Token tok;
        tok.kind = kind;
        tok.text = std::move(text);
        tok.loc = loc;
        tokens.push_back(std::move(tok));
    };

    while (!cur.atEnd()) {
        SourceLoc loc = cur.loc();
        char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        // comments
        if (c == '/' && cur.peek2() == '/') {
            while (!cur.atEnd() && cur.peek() != '\n')
                cur.advance();
            continue;
        }
        if (c == '/' && cur.peek2() == '*') {
            cur.advance();
            cur.advance();
            while (!cur.atEnd() &&
                   !(cur.peek() == '*' && cur.peek2() == '/')) {
                cur.advance();
            }
            if (cur.atEnd())
                userError("unterminated block comment", loc);
            cur.advance();
            cur.advance();
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (!cur.atEnd() &&
                   (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
                    cur.peek() == '_')) {
                text.push_back(cur.advance());
            }
            push(TokenKind::Ident, std::move(text), loc);
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::string text;
            while (!cur.atEnd() &&
                   std::isdigit(static_cast<unsigned char>(cur.peek()))) {
                text.push_back(cur.advance());
            }
            Token tok;
            tok.kind = TokenKind::Integer;
            tok.text = text;
            tok.intValue = std::stoll(text);
            tok.loc = loc;
            tokens.push_back(std::move(tok));
            continue;
        }

        cur.advance();
        switch (c) {
          case '{': push(TokenKind::LBrace, "{", loc); break;
          case '}': push(TokenKind::RBrace, "}", loc); break;
          case '(': push(TokenKind::LParen, "(", loc); break;
          case ')': push(TokenKind::RParen, ")", loc); break;
          case '[': push(TokenKind::LBracket, "[", loc); break;
          case ']': push(TokenKind::RBracket, "]", loc); break;
          case ';': push(TokenKind::Semi, ";", loc); break;
          case ',': push(TokenKind::Comma, ",", loc); break;
          case '.': push(TokenKind::Dot, ".", loc); break;
          case '+': push(TokenKind::Plus, "+", loc); break;
          case '-': push(TokenKind::Minus, "-", loc); break;
          case '*': push(TokenKind::Star, "*", loc); break;
          case '/': push(TokenKind::Slash, "/", loc); break;
          case '%': push(TokenKind::Percent, "%", loc); break;
          case ':':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::Assign, ":=", loc);
            } else {
                push(TokenKind::Colon, ":", loc);
            }
            break;
          case '<':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::Le, "<=", loc);
            } else {
                push(TokenKind::Lt, "<", loc);
            }
            break;
          case '>':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::Ge, ">=", loc);
            } else {
                push(TokenKind::Gt, ">", loc);
            }
            break;
          case '=':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::EqEq, "==", loc);
            } else {
                userError("unexpected '='; did you mean ':=' or '=='?", loc);
            }
            break;
          case '!':
            if (cur.peek() == '=') {
                cur.advance();
                push(TokenKind::NotEq, "!=", loc);
            } else {
                userError("unexpected '!'", loc);
            }
            break;
          case '?':
            if (cur.peek() == '?') {
                cur.advance();
                push(TokenKind::Question, "??", loc);
            } else {
                userError("unexpected '?'; holes are written with two "
                          "question marks", loc);
            }
            break;
          default:
            userError(std::string("unexpected character '") + c + "'", loc);
        }
    }

    Token end;
    end.kind = TokenKind::End;
    end.loc = cur.loc();
    tokens.push_back(std::move(end));
    return tokens;
}

} // namespace hecate::lang
