#pragma once

/**
 * @file
 * Pretty-printers turning ASTs back into DSL surface syntax. Used for
 * round-trip tests, for presenting synthesized concrete traversals in
 * the paper's Fig. 4(b) form, and by the C++ code generator.
 */

#include <string>

#include "lang/ast.hpp"

namespace hecate::lang {

/** Render an expression in L_a surface syntax. */
std::string printExpr(const ast::Expr& expr);

/** Render a full rule `lhs := rhs;`. */
std::string printRule(const ast::RuleDecl& rule);

/** Render a grammar unit. */
std::string printGrammar(const ast::GrammarAst& unit);

/** Render a traversal (symbolic holes print as `??`). */
std::string printTraversal(const ast::TraversalDecl& traversal);

} // namespace hecate::lang
