#include "lang/parser.hpp"

#include <utility>

#include "lang/lexer.hpp"

namespace hecate::lang {

namespace {

using namespace hecate::ast;

/** Shared token-stream machinery for both parsers. */
class ParserBase {
  public:
    explicit ParserBase(std::string_view source) : tokens_(lex(source)) {}

  protected:
    const Token& peek() const { return tokens_[pos_]; }

    bool at(TokenKind kind) const { return peek().kind == kind; }

    /** True iff the current token is the identifier @p word. */
    bool atWord(std::string_view word) const
    {
        return at(TokenKind::Ident) && peek().text == word;
    }

    Token advance() { return tokens_[pos_++]; }

    Token expect(TokenKind kind)
    {
        if (!at(kind)) {
            userError(std::string("expected ") + tokenKindName(kind) +
                          ", found '" + peek().text + "'",
                      peek().loc);
        }
        return advance();
    }

    Token expectWord(std::string_view word)
    {
        if (!atWord(word)) {
            userError("expected '" + std::string(word) + "', found '" +
                          peek().text + "'",
                      peek().loc);
        }
        return advance();
    }

    bool accept(TokenKind kind)
    {
        if (!at(kind))
            return false;
        advance();
        return true;
    }

    bool acceptWord(std::string_view word)
    {
        if (!atWord(word))
            return false;
        advance();
        return true;
    }

    std::string expectIdent()
    {
        return expect(TokenKind::Ident).text;
    }

  private:
    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

/** Parser for L_a. */
class GrammarParser : public ParserBase {
  public:
    using ParserBase::ParserBase;

    GrammarAst parseUnit()
    {
        GrammarAst unit;
        while (!at(TokenKind::End)) {
            if (atWord("interface")) {
                unit.interfaces.push_back(parseInterface());
            } else if (atWord("class")) {
                unit.classes.push_back(parseClass());
            } else {
                userError("expected 'interface' or 'class', found '" +
                              peek().text + "'",
                          peek().loc);
            }
        }
        return unit;
    }

  private:
    InterfaceDecl parseInterface()
    {
        InterfaceDecl decl;
        decl.loc = peek().loc;
        expectWord("interface");
        decl.name = expectIdent();
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace)) {
            bool is_input;
            if (acceptWord("input")) {
                is_input = true;
            } else if (acceptWord("output")) {
                is_input = false;
            } else {
                userError("expected 'input' or 'output', found '" +
                              peek().text + "'",
                          peek().loc);
            }
            // name list
            for (;;) {
                AttrDecl attr;
                attr.loc = peek().loc;
                attr.name = expectIdent();
                attr.isInput = is_input;
                decl.attrs.push_back(std::move(attr));
                if (!accept(TokenKind::Comma))
                    break;
            }
            expect(TokenKind::Colon);
            expectIdent(); // attribute type; only 'int' is modeled
            expect(TokenKind::Semi);
        }
        return decl;
    }

    ClassDecl parseClass()
    {
        ClassDecl decl;
        decl.loc = peek().loc;
        expectWord("class");
        decl.name = expectIdent();
        expect(TokenKind::Colon);
        decl.interface = expectIdent();
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace)) {
            if (atWord("children")) {
                parseChildren(decl);
            } else if (atWord("rules")) {
                parseRules(decl);
            } else {
                userError("expected 'children' or 'rules', found '" +
                              peek().text + "'",
                          peek().loc);
            }
        }
        return decl;
    }

    void parseChildren(ClassDecl& decl)
    {
        expectWord("children");
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace)) {
            ChildDecl child;
            child.loc = peek().loc;
            child.name = expectIdent();
            expect(TokenKind::Colon);
            if (accept(TokenKind::LBracket)) {
                child.collection = true;
                child.type = expectIdent();
                expect(TokenKind::RBracket);
            } else {
                std::string head = expectIdent();
                if (head == "Optional") {
                    child.optional = true;
                    expect(TokenKind::LBracket);
                    child.type = expectIdent();
                    expect(TokenKind::RBracket);
                } else {
                    child.type = std::move(head);
                }
            }
            expect(TokenKind::Semi);
            decl.children.push_back(std::move(child));
        }
    }

    void parseRules(ClassDecl& decl)
    {
        expectWord("rules");
        std::string pass;
        if (accept(TokenKind::LParen)) {
            pass = expectIdent();
            expect(TokenKind::RParen);
        }
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace)) {
            RuleDecl rule;
            rule.loc = peek().loc;
            rule.pass = pass;
            rule.lhs = parseSelect();
            expect(TokenKind::Assign);
            rule.rhs = parseExpr();
            expect(TokenKind::Semi);
            decl.rules.push_back(std::move(rule));
        }
    }

    Select parseSelect()
    {
        Select sel;
        sel.loc = peek().loc;
        sel.base = expectIdent();
        expect(TokenKind::Dot);
        sel.attr = expectIdent();
        return sel;
    }

    ExprPtr parseExpr() { return parseComparison(); }

    ExprPtr parseComparison()
    {
        ExprPtr lhs = parseAdditive();
        for (;;) {
            std::string op;
            if (at(TokenKind::Lt)) op = "<";
            else if (at(TokenKind::Le)) op = "<=";
            else if (at(TokenKind::Gt)) op = ">";
            else if (at(TokenKind::Ge)) op = ">=";
            else if (at(TokenKind::EqEq)) op = "==";
            else if (at(TokenKind::NotEq)) op = "!=";
            else break;
            SourceLoc loc = advance().loc;
            ExprPtr rhs = parseAdditive();
            lhs = Expr::makeBinary(op, std::move(lhs), std::move(rhs), loc);
        }
        return lhs;
    }

    ExprPtr parseAdditive()
    {
        ExprPtr lhs = parseMultiplicative();
        for (;;) {
            std::string op;
            if (at(TokenKind::Plus)) op = "+";
            else if (at(TokenKind::Minus)) op = "-";
            else break;
            SourceLoc loc = advance().loc;
            ExprPtr rhs = parseMultiplicative();
            lhs = Expr::makeBinary(op, std::move(lhs), std::move(rhs), loc);
        }
        return lhs;
    }

    ExprPtr parseMultiplicative()
    {
        ExprPtr lhs = parseUnary();
        for (;;) {
            std::string op;
            if (at(TokenKind::Star)) op = "*";
            else if (at(TokenKind::Slash)) op = "/";
            else if (at(TokenKind::Percent)) op = "%";
            else break;
            SourceLoc loc = advance().loc;
            ExprPtr rhs = parseUnary();
            lhs = Expr::makeBinary(op, std::move(lhs), std::move(rhs), loc);
        }
        return lhs;
    }

    ExprPtr parseUnary()
    {
        if (at(TokenKind::Minus)) {
            SourceLoc loc = advance().loc;
            ExprPtr operand = parseUnary();
            return Expr::makeBinary("-", Expr::makeConst(0, loc),
                                    std::move(operand), loc);
        }
        return parsePrimary();
    }

    ExprPtr parsePrimary()
    {
        SourceLoc loc = peek().loc;
        if (at(TokenKind::Integer)) {
            return Expr::makeConst(advance().intValue, loc);
        }
        if (accept(TokenKind::LParen)) {
            ExprPtr inner = parseExpr();
            expect(TokenKind::RParen);
            return inner;
        }
        if (atWord("if")) {
            advance();
            ExprPtr cond = parseExpr();
            expectWord("then");
            ExprPtr then_arm = parseExpr();
            expectWord("else");
            ExprPtr else_arm = parseExpr();
            return Expr::makeIf(std::move(cond), std::move(then_arm),
                                std::move(else_arm), loc);
        }
        if (atWord("fold")) {
            advance();
            expect(TokenKind::LParen);
            std::string fn = expectIdent();
            expect(TokenKind::Comma);
            ExprPtr init = parseExpr();
            expect(TokenKind::Comma);
            Select coll = parseSelect();
            expect(TokenKind::RParen);
            return Expr::makeFold(std::move(fn), std::move(init),
                                  std::move(coll), loc);
        }
        if (at(TokenKind::Ident)) {
            std::string head = advance().text;
            if (accept(TokenKind::LParen)) {
                std::vector<ExprPtr> args;
                if (!at(TokenKind::RParen)) {
                    args.push_back(parseExpr());
                    while (accept(TokenKind::Comma))
                        args.push_back(parseExpr());
                }
                expect(TokenKind::RParen);
                return Expr::makeCall(std::move(head), std::move(args), loc);
            }
            if (accept(TokenKind::Dot)) {
                Select sel;
                sel.loc = loc;
                sel.base = std::move(head);
                sel.attr = expectIdent();
                return Expr::makeSelect(std::move(sel), loc);
            }
            userError("bare identifier '" + head +
                          "'; attribute reads are written 'base.attr'",
                      loc);
        }
        userError("expected expression, found '" + peek().text + "'", loc);
    }
};

/** Parser for L_t. */
class TraversalParser : public ParserBase {
  public:
    using ParserBase::ParserBase;

    TraversalDecl parseTraversalDecl()
    {
        TraversalDecl decl;
        decl.loc = peek().loc;
        expectWord("traversal");
        decl.name = expectIdent();
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace))
            decl.cases.push_back(parseCase());
        expect(TokenKind::End);
        return decl;
    }

  private:
    CaseDecl parseCase()
    {
        CaseDecl decl;
        decl.loc = peek().loc;
        expectWord("case");
        decl.className = expectIdent();
        expect(TokenKind::LBrace);
        while (!accept(TokenKind::RBrace))
            decl.stmts.push_back(parseStmt());
        return decl;
    }

    TStmtPtr parseStmt()
    {
        SourceLoc loc = peek().loc;
        if (accept(TokenKind::Question) || acceptWord("hole")) {
            expect(TokenKind::Semi);
            return TStmt::makeHole(loc);
        }
        if (acceptWord("recur")) {
            std::string child = expectIdent();
            expect(TokenKind::Semi);
            return TStmt::makeRecur(std::move(child), loc);
        }
        if (acceptWord("iterate")) {
            std::string coll = expectIdent();
            return TStmt::makeIterate(std::move(coll), parseBlock(), loc);
        }
        if (acceptWord("parallel")) {
            std::string coll;
            if (at(TokenKind::Ident))
                coll = expectIdent();
            return TStmt::makeParallel(std::move(coll), parseBlock(), loc);
        }
        if (acceptWord("eval")) {
            // `eval self.attr`, `eval attr`, or `eval child.attr` (the
            // last selects an inherited-attribute rule).
            std::string first = expectIdent();
            std::string base;
            std::string attr = first;
            if (accept(TokenKind::Dot)) {
                attr = expectIdent();
                if (first != "self")
                    base = std::move(first);
            }
            expect(TokenKind::Semi);
            if (base.empty())
                return TStmt::makeEval(std::move(attr), loc);
            return TStmt::makeEvalChild(std::move(base), std::move(attr),
                                        loc);
        }
        userError("expected traversal statement, found '" + peek().text + "'",
                  loc);
    }

    std::vector<TStmtPtr> parseBlock()
    {
        expect(TokenKind::LBrace);
        std::vector<TStmtPtr> body;
        while (!accept(TokenKind::RBrace))
            body.push_back(parseStmt());
        return body;
    }
};

} // namespace

ast::GrammarAst
parseGrammar(std::string_view source)
{
    GrammarParser parser(source);
    return parser.parseUnit();
}

ast::TraversalDecl
parseTraversal(std::string_view source)
{
    TraversalParser parser(source);
    return parser.parseTraversalDecl();
}

} // namespace hecate::lang
