#include "lang/ast.hpp"

#include <utility>

namespace hecate::ast {

ExprPtr
Expr::makeConst(int64_t v, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Const;
    e->value = v;
    e->loc = loc;
    return e;
}

ExprPtr
Expr::makeSelect(Select sel, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Select;
    e->select = std::move(sel);
    e->loc = loc;
    return e;
}

ExprPtr
Expr::makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Binary;
    e->op = std::move(op);
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    e->loc = loc;
    return e;
}

ExprPtr
Expr::makeCall(std::string fn, std::vector<ExprPtr> args, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Call;
    e->op = std::move(fn);
    e->args = std::move(args);
    e->loc = loc;
    return e;
}

ExprPtr
Expr::makeFold(std::string fn, ExprPtr init, Select coll, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::Fold;
    e->op = std::move(fn);
    e->args.push_back(std::move(init));
    e->select = std::move(coll);
    e->loc = loc;
    return e;
}

ExprPtr
Expr::makeIf(ExprPtr c, ExprPtr t, ExprPtr f, SourceLoc loc)
{
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::If;
    e->args.push_back(std::move(c));
    e->args.push_back(std::move(t));
    e->args.push_back(std::move(f));
    e->loc = loc;
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->loc = loc;
    e->value = value;
    e->select = select;
    e->op = op;
    e->args.reserve(args.size());
    for (const auto& a : args)
        e->args.push_back(a->clone());
    return e;
}

TStmtPtr
TStmt::makeHole(SourceLoc loc)
{
    auto s = std::make_unique<TStmt>();
    s->kind = TStmtKind::Hole;
    s->loc = loc;
    return s;
}

TStmtPtr
TStmt::makeRecur(std::string child, SourceLoc loc)
{
    auto s = std::make_unique<TStmt>();
    s->kind = TStmtKind::Recur;
    s->child = std::move(child);
    s->loc = loc;
    return s;
}

TStmtPtr
TStmt::makeIterate(std::string coll, std::vector<TStmtPtr> body, SourceLoc loc)
{
    auto s = std::make_unique<TStmt>();
    s->kind = TStmtKind::Iterate;
    s->child = std::move(coll);
    s->body = std::move(body);
    s->loc = loc;
    return s;
}

TStmtPtr
TStmt::makeParallel(std::string coll, std::vector<TStmtPtr> body, SourceLoc loc)
{
    auto s = std::make_unique<TStmt>();
    s->kind = TStmtKind::Parallel;
    s->child = std::move(coll);
    s->body = std::move(body);
    s->loc = loc;
    return s;
}

TStmtPtr
TStmt::makeEval(std::string attr, SourceLoc loc)
{
    auto s = std::make_unique<TStmt>();
    s->kind = TStmtKind::Eval;
    s->evalAttr = std::move(attr);
    s->loc = loc;
    return s;
}

TStmtPtr
TStmt::makeEvalChild(std::string base, std::string attr, SourceLoc loc)
{
    auto s = makeEval(std::move(attr), loc);
    s->evalBase = std::move(base);
    return s;
}

TStmtPtr
TStmt::clone() const
{
    auto s = std::make_unique<TStmt>();
    s->kind = kind;
    s->loc = loc;
    s->child = child;
    s->evalBase = evalBase;
    s->evalAttr = evalAttr;
    s->body.reserve(body.size());
    for (const auto& b : body)
        s->body.push_back(b->clone());
    return s;
}

CaseDecl
CaseDecl::clone() const
{
    CaseDecl c;
    c.className = className;
    c.loc = loc;
    c.stmts.reserve(stmts.size());
    for (const auto& s : stmts)
        c.stmts.push_back(s->clone());
    return c;
}

TraversalDecl
TraversalDecl::clone() const
{
    TraversalDecl t;
    t.name = name;
    t.loc = loc;
    t.cases.reserve(cases.size());
    for (const auto& c : cases)
        t.cases.push_back(c.clone());
    return t;
}

} // namespace hecate::ast
