#pragma once

/**
 * @file
 * Abstract syntax trees for Hecate's two surface languages:
 *
 *  - L_a, the attribute-grammar visitor language (paper Fig. 6): interfaces,
 *    classes with typed children, and single-assignment computation rules.
 *  - L_t, the traversal skeleton language (paper Fig. 7): per-class cases
 *    containing `recur`, `iterate`, `parallel`, `eval`, and holes (iota).
 *
 * The ASTs are produced by lang/parser and consumed by sem/analyzer; they
 * deliberately stay "stringly" — name resolution happens in sem/.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace hecate::ast {

// ---------------------------------------------------------------------------
// L_a: attribute grammar
// ---------------------------------------------------------------------------

/**
 * An access path <sel>: one or two identifiers ending in an attribute,
 * e.g. `self.w`, `fc.w1`. The base is `self` or a child name.
 */
struct Select {
    std::string base;
    std::string attr;
    SourceLoc loc;

    bool isSelf() const { return base == "self"; }
    std::string str() const { return base + "." + attr; }
};

/** Expression node kinds of L_a. */
enum class ExprKind : uint8_t {
    Const,  ///< integer literal
    Select, ///< access path read
    Binary, ///< lhs <op> rhs
    Call,   ///< f(args...) — builtin function call (max, min, abs, ...)
    Fold,   ///< fold(f, init, coll.attr) — aggregate over a collection child
    If,     ///< if c then t else e
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/**
 * A single expression tree node. Fields are populated according to
 * `kind`; unused fields stay default-initialized.
 */
struct Expr {
    ExprKind kind;
    SourceLoc loc;

    int64_t value = 0;               ///< Const
    Select select;                   ///< Select; Fold's collection path
    std::string op;                  ///< Binary operator or Call/Fold function
    std::vector<ExprPtr> args;       ///< Binary(2), Call(n), Fold(init), If(3)

    static ExprPtr makeConst(int64_t v, SourceLoc loc = {});
    static ExprPtr makeSelect(Select sel, SourceLoc loc = {});
    static ExprPtr makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs,
                              SourceLoc loc = {});
    static ExprPtr makeCall(std::string fn, std::vector<ExprPtr> args,
                            SourceLoc loc = {});
    static ExprPtr makeFold(std::string fn, ExprPtr init, Select coll,
                            SourceLoc loc = {});
    static ExprPtr makeIf(ExprPtr c, ExprPtr t, ExprPtr e, SourceLoc loc = {});

    /** Deep structural copy. */
    ExprPtr clone() const;
};

/** One computation rule `<sel> := <expr>;`. */
struct RuleDecl {
    Select lhs;
    ExprPtr rhs;
    std::string pass; ///< optional pass tag (used by the Grafter baseline)
    SourceLoc loc;
};

/** An attribute declaration inside an interface: input or output. */
struct AttrDecl {
    std::string name;
    bool isInput = false;
    SourceLoc loc;
};

/** `interface Box { input w0,h0: int; output w,h: int; }` */
struct InterfaceDecl {
    std::string name;
    std::vector<AttrDecl> attrs;
    SourceLoc loc;
};

/**
 * A child declaration: `nx : Optional[Box];` (optional scalar),
 * `fc : Box;` (required scalar), or `cs : [Box];` (collection).
 */
struct ChildDecl {
    std::string name;
    std::string type;        ///< interface or class name
    bool optional = false;
    bool collection = false;
    SourceLoc loc;
};

/** `class Inner : Box { children {...} rules {...} }` */
struct ClassDecl {
    std::string name;
    std::string interface;
    std::vector<ChildDecl> children;
    std::vector<RuleDecl> rules;
    SourceLoc loc;
};

/** A parsed L_a compilation unit. */
struct GrammarAst {
    std::vector<InterfaceDecl> interfaces;
    std::vector<ClassDecl> classes;
};

// ---------------------------------------------------------------------------
// L_t: traversal skeletons
// ---------------------------------------------------------------------------

/** Statement kinds of L_t. */
enum class TStmtKind : uint8_t {
    Hole,     ///< iota — slot to be filled with at most one rule
    Recur,    ///< recur <child>
    Iterate,  ///< iterate <coll> { body } — sequential per-element
    Parallel, ///< parallel { stmts } or parallel <coll> { body } — fork-join
    Eval,     ///< eval <sel> — fixed rule (identified by its LHS attribute)
};

struct TStmt;
using TStmtPtr = std::unique_ptr<TStmt>;

/** One traversal statement. */
struct TStmt {
    TStmtKind kind;
    SourceLoc loc;

    std::string child;          ///< Recur target / Iterate/Parallel collection
    std::string evalBase;       ///< Eval: LHS base; empty means self
    std::string evalAttr;       ///< Eval: attribute name
    std::vector<TStmtPtr> body; ///< Iterate/Parallel body

    static TStmtPtr makeHole(SourceLoc loc = {});
    static TStmtPtr makeRecur(std::string child, SourceLoc loc = {});
    static TStmtPtr makeIterate(std::string coll, std::vector<TStmtPtr> body,
                                SourceLoc loc = {});
    static TStmtPtr makeParallel(std::string coll, std::vector<TStmtPtr> body,
                                 SourceLoc loc = {});
    static TStmtPtr makeEval(std::string attr, SourceLoc loc = {});
    static TStmtPtr makeEvalChild(std::string base, std::string attr,
                                  SourceLoc loc = {});

    TStmtPtr clone() const;
};

/** `case Inner { ... }` */
struct CaseDecl {
    std::string className;
    std::vector<TStmtPtr> stmts;
    SourceLoc loc;

    CaseDecl clone() const;
};

/** `traversal layout { case ... }` */
struct TraversalDecl {
    std::string name;
    std::vector<CaseDecl> cases;
    SourceLoc loc;

    TraversalDecl clone() const;
};

} // namespace hecate::ast
