#include "lang/token.hpp"

namespace hecate::lang {

const char*
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::End: return "end of input";
      case TokenKind::Ident: return "identifier";
      case TokenKind::Integer: return "integer";
      case TokenKind::LBrace: return "'{'";
      case TokenKind::RBrace: return "'}'";
      case TokenKind::LParen: return "'('";
      case TokenKind::RParen: return "')'";
      case TokenKind::LBracket: return "'['";
      case TokenKind::RBracket: return "']'";
      case TokenKind::Semi: return "';'";
      case TokenKind::Colon: return "':'";
      case TokenKind::Comma: return "','";
      case TokenKind::Dot: return "'.'";
      case TokenKind::Assign: return "':='";
      case TokenKind::Plus: return "'+'";
      case TokenKind::Minus: return "'-'";
      case TokenKind::Star: return "'*'";
      case TokenKind::Slash: return "'/'";
      case TokenKind::Percent: return "'%'";
      case TokenKind::Lt: return "'<'";
      case TokenKind::Le: return "'<='";
      case TokenKind::Gt: return "'>'";
      case TokenKind::Ge: return "'>='";
      case TokenKind::EqEq: return "'=='";
      case TokenKind::NotEq: return "'!='";
      case TokenKind::Question: return "hole marker '?" "?'";
    }
    return "unknown";
}

} // namespace hecate::lang
