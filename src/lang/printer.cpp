#include "lang/printer.hpp"

#include <sstream>

namespace hecate::lang {

using namespace hecate::ast;

namespace {

void
printExprTo(std::ostream& os, const Expr& expr)
{
    switch (expr.kind) {
      case ExprKind::Const:
        os << expr.value;
        break;
      case ExprKind::Select:
        os << expr.select.str();
        break;
      case ExprKind::Binary:
        os << "(";
        printExprTo(os, *expr.args[0]);
        os << " " << expr.op << " ";
        printExprTo(os, *expr.args[1]);
        os << ")";
        break;
      case ExprKind::Call:
        os << expr.op << "(";
        for (size_t i = 0; i < expr.args.size(); ++i) {
            if (i > 0)
                os << ", ";
            printExprTo(os, *expr.args[i]);
        }
        os << ")";
        break;
      case ExprKind::Fold:
        os << "fold(" << expr.op << ", ";
        printExprTo(os, *expr.args[0]);
        os << ", " << expr.select.str() << ")";
        break;
      case ExprKind::If:
        os << "if ";
        printExprTo(os, *expr.args[0]);
        os << " then ";
        printExprTo(os, *expr.args[1]);
        os << " else ";
        printExprTo(os, *expr.args[2]);
        break;
    }
}

void
printStmtTo(std::ostream& os, const TStmt& stmt, int indent)
{
    std::string pad(static_cast<size_t>(indent) * 4, ' ');
    switch (stmt.kind) {
      case TStmtKind::Hole:
        os << pad << "??;\n";
        break;
      case TStmtKind::Recur:
        os << pad << "recur " << stmt.child << ";\n";
        break;
      case TStmtKind::Eval:
        os << pad << "eval "
           << (stmt.evalBase.empty() ? std::string("self") : stmt.evalBase)
           << "." << stmt.evalAttr << ";\n";
        break;
      case TStmtKind::Iterate:
      case TStmtKind::Parallel:
        os << pad
           << (stmt.kind == TStmtKind::Iterate ? "iterate" : "parallel");
        if (!stmt.child.empty())
            os << " " << stmt.child;
        os << " {\n";
        for (const auto& child_stmt : stmt.body)
            printStmtTo(os, *child_stmt, indent + 1);
        os << pad << "}\n";
        break;
    }
}

} // namespace

std::string
printExpr(const Expr& expr)
{
    std::ostringstream os;
    printExprTo(os, expr);
    return os.str();
}

std::string
printRule(const RuleDecl& rule)
{
    std::ostringstream os;
    os << rule.lhs.str() << " := ";
    printExprTo(os, *rule.rhs);
    os << ";";
    return os.str();
}

std::string
printGrammar(const GrammarAst& unit)
{
    std::ostringstream os;
    for (const auto& iface : unit.interfaces) {
        os << "interface " << iface.name << " {\n";
        // group by direction, preserving declaration order
        for (int want_input = 1; want_input >= 0; --want_input) {
            std::vector<std::string> names;
            for (const auto& attr : iface.attrs) {
                if (attr.isInput == (want_input == 1))
                    names.push_back(attr.name);
            }
            if (names.empty())
                continue;
            os << "    " << (want_input ? "input " : "output ");
            for (size_t i = 0; i < names.size(); ++i) {
                if (i > 0)
                    os << ", ";
                os << names[i];
            }
            os << " : int;\n";
        }
        os << "}\n";
    }
    for (const auto& cls : unit.classes) {
        os << "class " << cls.name << " : " << cls.interface << " {\n";
        if (!cls.children.empty()) {
            os << "    children {\n";
            for (const auto& child : cls.children) {
                os << "        " << child.name << " : ";
                if (child.collection) {
                    os << "[" << child.type << "]";
                } else if (child.optional) {
                    os << "Optional[" << child.type << "]";
                } else {
                    os << child.type;
                }
                os << ";\n";
            }
            os << "    }\n";
        }
        if (!cls.rules.empty()) {
            // emit one rules block per pass tag, preserving order
            bool block_open = false;
            std::string current_pass;
            for (const auto& rule : cls.rules) {
                if (!block_open || rule.pass != current_pass) {
                    if (block_open)
                        os << "    }\n";
                    block_open = true;
                    current_pass = rule.pass;
                    os << "    rules";
                    if (!current_pass.empty())
                        os << "(" << current_pass << ")";
                    os << " {\n";
                }
                os << "        " << printRule(rule) << "\n";
            }
            os << "    }\n";
        }
        os << "}\n";
    }
    return os.str();
}

std::string
printTraversal(const TraversalDecl& traversal)
{
    std::ostringstream os;
    os << "traversal " << traversal.name << " {\n";
    for (const auto& case_decl : traversal.cases) {
        os << "    case " << case_decl.className << " {\n";
        for (const auto& stmt : case_decl.stmts)
            printStmtTo(os, *stmt, 2);
        os << "    }\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace hecate::lang
