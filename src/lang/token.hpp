#pragma once

/**
 * @file
 * Token definitions shared by the L_a / L_t lexer and parsers.
 */

#include <cstdint>
#include <string>

#include "support/diagnostics.hpp"

namespace hecate::lang {

/** Lexical token kinds for both DSLs. */
enum class TokenKind : uint8_t {
    End,
    Ident,
    Integer,
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    Assign, // :=
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Question, // ?? — hole
};

/** One lexed token with its source text and location. */
struct Token {
    TokenKind kind = TokenKind::End;
    std::string text;
    int64_t intValue = 0;
    SourceLoc loc;
};

/** Human-readable token-kind name for diagnostics. */
const char* tokenKindName(TokenKind kind);

} // namespace hecate::lang
