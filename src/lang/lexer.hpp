#pragma once

/**
 * @file
 * Hand-written lexer for the Hecate DSLs. Supports `//` line comments
 * and `/ * ... * /` block comments so grammar sources can be documented
 * the way the paper's figures are.
 */

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"

namespace hecate::lang {

/** Tokenize @p source; throws UserError on malformed input. */
std::vector<Token> lex(std::string_view source);

} // namespace hecate::lang
