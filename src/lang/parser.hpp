#pragma once

/**
 * @file
 * Recursive-descent parsers for the attribute grammar language L_a
 * (paper Fig. 6) and the traversal skeleton language L_t (Fig. 7).
 *
 * Concrete syntax follows the paper's figures:
 *
 * @code
 *   interface Box { input w0, h0 : int; output w1, w, h1, h : int; }
 *   class Inner : Box {
 *       children { nx : Optional[Box]; fc : Optional[Box]; }
 *       rules(calcWidth) {
 *           self.w  := max(self.w0, fc.w1);
 *           self.w1 := max(self.w, nx.w1);
 *       }
 *   }
 *
 *   traversal layout {
 *       case Inner { recur fc; recur nx; ??; ??; ??; ??; }
 *       case Leaf  { recur nx; ??; ??; ??; ??; }
 *   }
 * @endcode
 *
 * Holes (iota in the paper) are written `??` or `hole`. A `rules` block may
 * carry an optional pass tag in parentheses used by the Grafter baseline.
 */

#include <string_view>

#include "lang/ast.hpp"

namespace hecate::lang {

/** Parse an L_a compilation unit. Throws UserError on syntax errors. */
ast::GrammarAst parseGrammar(std::string_view source);

/** Parse a single L_t traversal declaration. */
ast::TraversalDecl parseTraversal(std::string_view source);

} // namespace hecate::lang
