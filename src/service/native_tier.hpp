#pragma once

/**
 * @file
 * NativeTier: the tiered-execution controller. One instance owns the
 * compiler identity, the NativeCache, the background compile threads,
 * and the per-key failure pins; Pipeline and the serve daemon share it.
 *
 * Tier policy (ExecTier):
 *
 *  - Bytecode: never consult the tier.
 *  - Native:   acquire() — block until the module is available (cache
 *              hit or synchronous compile); fall back to bytecode only
 *              when the tier is unavailable (no compiler / compile
 *              failed, with the key pinned so the failure is paid once).
 *  - Auto:     poll() — serve this request on whatever is ready now;
 *              a miss kicks a background compile and returns null, so
 *              requests keep running on bytecode and hot-swap to
 *              native the first time poll() finds the module resolved
 *              (counted as a `native.swap`).
 *
 * Failure containment (the serve-daemon hardening): compiler discovery
 * failures and per-key compile failures are recorded, logged to stderr
 * exactly once, and pin the tier (globally / for that key) to
 * bytecode. Nothing in this class throws for toolchain problems.
 */

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "codegen/native_compiler.hpp"
#include "codegen/native_emitter.hpp"
#include "service/native_cache.hpp"

namespace hecate::obs {
class Telemetry;
}

namespace hecate::service {

/** Which execution tier a request runs on. */
enum class ExecTier : uint8_t {
    Bytecode, ///< interpreter only; never compile
    Native,   ///< block for the native module (bytecode iff unavailable)
    Auto,     ///< bytecode now, hot-swap to native when it resolves
};

/** Stable name ("bytecode" / "native" / "auto"). */
const char* tierName(ExecTier tier);

/** Inverse of tierName; empty optional on unknown input. */
std::optional<ExecTier> parseTierName(std::string_view name);

/** Construction knobs. */
struct NativeTierConfig {
    std::string cacheDir;      ///< empty = in-memory artifacts only
    size_t cacheCapacity = 64; ///< loaded modules kept in memory
    /**
     * Test hook: probe exactly this compiler path instead of the
     * HECATE_CXX / CXX / PATH discovery.
     */
    std::string compilerOverride;
};

/** Compile / swap counters (cache counters live on the NativeCache). */
struct NativeTierStats {
    uint64_t compiles = 0;        ///< successful out-of-process builds
    uint64_t compileFailures = 0; ///< failed attempts (keys now pinned)
    double compileSeconds = 0.0;  ///< total wall time across builds
    uint64_t swaps = 0;           ///< first native serve per key
    uint64_t pinnedKeys = 0;      ///< keys pinned to bytecode
};

/** The tiered-execution controller (thread-safe, shared). */
class NativeTier {
  public:
    explicit NativeTier(NativeTierConfig config = {});

    /** Joins every background compile still in flight. */
    ~NativeTier();

    NativeTier(const NativeTier&) = delete;
    NativeTier& operator=(const NativeTier&) = delete;

    /**
     * Whether a usable compiler exists (discovery runs on first call
     * and is cached; a failure logs once and disables the tier).
     */
    bool compilerAvailable();

    /** Identity of the discovered compiler ("" when unavailable). */
    std::string compilerIdentity();

    /** Discovery failure message ("" when a compiler exists). */
    std::string compilerError();

    /**
     * Blocking path (tier = Native): return the module for this
     * (problem, schedule, form) — from cache, by joining an in-flight
     * build, or by compiling synchronously. Returns nullptr (and fills
     * @p error) when the tier is unavailable or the build failed; the
     * key is then pinned and later calls fail fast.
     */
    std::shared_ptr<codegen::NativeModule>
    acquire(const ProblemKey& problem, const std::string& schedulePayload,
            const sched::Skeleton& concrete,
            const runtime::Program& program,
            runtime::SweepStrategy strategy, obs::Telemetry& telemetry,
            std::string* error = nullptr);

    /**
     * Non-blocking path (tier = Auto): the module if it is resolved
     * right now, else nullptr — kicking a background compile on first
     * miss. The first non-null return per key counts as a swap.
     */
    std::shared_ptr<codegen::NativeModule>
    poll(const ProblemKey& problem, const std::string& schedulePayload,
         const sched::Skeleton& concrete, const runtime::Program& program,
         runtime::SweepStrategy strategy);

    /** Block until no background compile is in flight (tests, bench). */
    void drain();

    NativeCache& cache() { return cache_; }
    NativeTierStats stats() const;

    /**
     * Export tier + cache counters into @p telemetry
     * ("native.compile.count", "native.compile.fail",
     * "native.compile.seconds", "native.swap", "native.pinned",
     * "native.cache.{hits,misses,disk_hits,corrupt_evicted}").
     */
    void exportCounters(obs::Telemetry& telemetry) const;

  private:
    /** Discovery under mutex_; logs once on failure. */
    bool ensureCompilerLocked();

    /**
     * Compile + adopt one already-emitted TU; returns nullptr and
     * fills @p failure on any error. Runs outside mutex_.
     */
    std::shared_ptr<codegen::NativeModule>
    buildModule(const ProblemKey& key, const std::string& tu,
                std::string* failure);

    /** Record a failure: pin the key, log once. Under mutex_. */
    void pinLocked(const std::string& canonical,
                   const std::string& failure);

    /** First native serve of a key counts as the bytecode→native swap. */
    void noteServedLocked(const std::string& canonical);

    NativeTierConfig config_;
    NativeCache cache_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool discovered_ = false;
    codegen::CompilerInfo compiler_;
    std::string compilerError_;
    std::unordered_map<std::string, std::string> pinned_; ///< key -> why
    std::unordered_set<std::string> inFlight_;  ///< keys compiling now
    std::unordered_set<std::string> served_;    ///< keys served native
    std::vector<std::thread> threads_;          ///< background compiles
    NativeTierStats stats_;
};

} // namespace hecate::service
