#pragma once

/**
 * @file
 * SynthService: the one-shot synthesizer turned into a reusable,
 * concurrent synthesis service.
 *
 * submit() returns a future resolved on a hecate::ThreadPool worker.
 * Each request is (grammar source, optional traversal source, root,
 * SynthesisConfig); the service computes its content-addressed
 * ProblemKey and then:
 *
 *  1. serves it from the ScheduleCache when the key is present
 *     (provenance CacheHit — no CEGIS, no solver);
 *  2. otherwise joins an identical in-flight request if one is
 *     running (single-flight: provenance JoinedInFlight, exactly one
 *     CEGIS run per distinct key no matter how many duplicates race);
 *  3. otherwise becomes the leader: runs CEGIS (or the auto-tuner
 *     when no traversal is given), publishes the result to followers
 *     and the cache (provenance FreshRun).
 *
 * Every outcome records its provenance, the leader's CEGIS iteration
 * count, and this request's own wall time.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "pipeline/pipeline.hpp"
#include "service/native_tier.hpp"
#include "service/schedule_cache.hpp"
#include "support/thread_pool.hpp"

namespace hecate::service {

/** How a request's answer was obtained (the pipeline's provenance). */
using Provenance = pipeline::Provenance;

/** Short name for reports ("cache" / "joined" / "fresh"). */
using pipeline::provenanceName;

/** One synthesis request, self-contained (sources, not references). */
struct SynthRequest {
    std::string grammarSrc;    ///< L_a source text
    std::string traversalSrc;  ///< L_t source; empty = auto-tune
    std::string rootInterface; ///< empty = interface of class 0
    synth::SynthesisConfig config;
    /**
     * Optional sink the request's telemetry is absorbed into when the
     * request resolves: the pipeline's stage spans, the leader's CEGIS
     * rounds and solver calls, and every counter. Must outlive the
     * request's future. Null = telemetry summarized only in
     * SynthOutcome::stats.
     */
    obs::Telemetry* telemetry = nullptr;
};

/** Result of one request, with provenance. */
struct SynthOutcome {
    bool ok = false;
    Provenance provenance = Provenance::FreshRun;
    std::string keyDigest;          ///< ProblemKey::digest()
    std::optional<sched::Schedule> schedule;
    std::string concreteTraversal;  ///< printed Fig. 4(b) form
    uint32_t cegisIterations = 0;   ///< leader's CEGIS rounds
    double seconds = 0.0;           ///< this request's wall time
    /**
     * Snapshot of this request's telemetry: every counter
     * ("ilp.*" / "sat.*" / "plan_cache.*"), plus "encode.seconds",
     * "solve.seconds" and "verify.seconds" span totals. Zero-cost
     * provenances (cache hits, joiners) contribute only decode time,
     * so their stats are empty or near-zero.
     */
    std::map<std::string, double> stats;
    std::string failure;            ///< set when !ok
};

/**
 * One batched execution request: a synthesis request (served through
 * the cache / single-flight machinery like any other) plus a forest to
 * generate and run under the resulting program.
 */
struct BatchRequest {
    SynthRequest synth;
    runtime::GenConfig gen;        ///< per-tree instance shape
    runtime::ExecOptions exec;     ///< pool=null uses the service pool
    uint32_t batchCount = 1;       ///< trees packed into the forest
};

/** Result of one batched execution. */
struct BatchOutcome {
    /** The synthesis half, with its usual provenance. */
    SynthOutcome synth;
    bool ok = false;
    runtime::RuntimeStats stats;   ///< batch-aggregate runtime counters
    uint64_t nodes = 0;            ///< total nodes across the batch
    uint64_t checksum = 0;         ///< output-column checksum (forest)
    double generateSeconds = 0.0;
    double executeSeconds = 0.0;
    std::string failure;           ///< set when !ok
};

/** Service-wide monotonic counters. */
struct ServiceStats {
    uint64_t requests = 0;
    uint64_t cacheHits = 0;
    uint64_t joinedInFlight = 0;
    uint64_t freshRuns = 0;
    uint64_t failures = 0;
};

/** Construction knobs. */
struct ServiceConfig {
    size_t workers = 0;        ///< thread pool size; 0 = hardware
    size_t cacheCapacity = 1024;
    size_t cacheShards = 8;
    /** Which tier batched executions run on (runBatch / submitBatch). */
    ExecTier tier = ExecTier::Bytecode;
    /** Native-tier knobs (cache dir, capacity, compiler override). */
    NativeTierConfig native;
    /**
     * Test hook: run by a leader after it has registered its flight
     * and before it starts CEGIS. Lets tests hold a leader open while
     * duplicate requests pile up and join.
     */
    std::function<void()> onLeaderSynthesis;
};

/** Concurrent, cached, deduplicated front end to the synthesizer. */
class SynthService {
  public:
    explicit SynthService(ServiceConfig config = {});
    ~SynthService();

    SynthService(const SynthService&) = delete;
    SynthService& operator=(const SynthService&) = delete;

    /** Enqueue a request; the future resolves on a pool worker. */
    std::future<SynthOutcome> submit(SynthRequest request);

    /** Run a request synchronously on the calling thread (same path). */
    SynthOutcome runNow(const SynthRequest& request);

    /**
     * Run a batched execution synchronously: synthesis goes through
     * the normal cache / single-flight path, then the compiled program
     * executes a generated ForestArena of request.batchCount trees in
     * one batched run, forking wave chunks onto the service pool
     * unless request.exec names its own.
     */
    BatchOutcome runBatch(const BatchRequest& request);

    /** Enqueue a batched execution; resolves on a pool worker. */
    std::future<BatchOutcome> submitBatch(BatchRequest request);

    /**
     * Block until every submitted request (including queued batch
     * jobs) has resolved. Deterministic: every future obtained from
     * submit/submitBatch is resolved by the time drain returns — task
     * exceptions become failure outcomes rather than broken promises,
     * and a leader that dies on any path still publishes a failure to
     * its queued followers instead of leaving them blocked on the
     * flight.
     */
    void drain();

    ServiceStats stats() const;
    ScheduleCache& cache() { return cache_; }
    NativeTier& nativeTier() { return nativeTier_; }
    ExecTier tier() const { return config_.tier; }
    size_t workerCount() const { return pool_.workerCount(); }

  private:
    /** What a leader publishes to its followers. */
    struct FlightResult {
        bool ok = false;
        std::string payload; ///< cacheable blob (style marker + schedule)
        uint32_t cegisIterations = 0;
        std::string failure;
    };

    struct Flight {
        std::promise<FlightResult> promise;
        std::shared_future<FlightResult> future;
    };

    SynthOutcome process(const SynthRequest& request);

    ServiceConfig config_;
    ScheduleCache cache_;
    NativeTier nativeTier_;
    std::mutex flightsMutex_;
    std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;

    std::atomic<uint64_t> requests_{0};
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> joined_{0};
    std::atomic<uint64_t> freshRuns_{0};
    std::atomic<uint64_t> failures_{0};

    ThreadPool pool_; ///< last member: workers die before the rest
};

} // namespace hecate::service
