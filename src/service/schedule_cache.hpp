#pragma once

/**
 * @file
 * In-memory sharded LRU cache of synthesized schedules, keyed by
 * ProblemKey, with an on-disk persistence format.
 *
 * Entries store a *portable* schedule encoding: per-slot canonical
 * rule tokens (see canonicalRuleToken) rather than raw RuleIds, so an
 * entry written for one grammar decodes correctly against any
 * isomorphic rename of it — exactly the set of grammars that can
 * produce the same ProblemKey.
 *
 * Disk format (one file per entry, named "<digest>.hsc"):
 *
 *     hecate-cache v1\n
 *     <fnv1a64 checksum of payload, 16 hex chars>\n
 *     <byte length of canonical key>\n
 *     <canonical key bytes><schedule blob bytes ... EOF>
 *
 * load() skips files with a bad magic line, checksum mismatch, or
 * truncated payload, reporting a diagnostic per skipped file instead
 * of failing the whole load.
 */

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/problem_key.hpp"

namespace hecate::obs {
class Telemetry;
}

namespace hecate::service {

/**
 * Encode @p schedule as a portable blob ("hecsched v1" + per-slot
 * canonical rule tokens) decodable against any isomorphic grammar.
 */
std::string encodePortableSchedule(const sched::Skeleton& skeleton,
                                   const sched::Schedule& schedule);

/**
 * Decode a portable blob against @p skeleton. Empty optional when the
 * blob is malformed or references rules/slots @p skeleton lacks.
 */
std::optional<sched::Schedule>
decodePortableSchedule(const sched::Skeleton& skeleton,
                       std::string_view blob);

/** Sharded LRU cache of portable schedule blobs. */
class ScheduleCache {
  public:
    /** Monotonic operation counters (aggregated across shards). */
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t insertions = 0;
        uint64_t evictions = 0;
    };

    /** Outcome of loading a persisted cache directory. */
    struct LoadReport {
        size_t loaded = 0;
        size_t skipped = 0;
        std::vector<std::string> diagnostics; ///< one per skipped file
    };

    /**
     * @p capacity total entries across @p shards shards (each shard
     * holds ~capacity/shards and evicts LRU independently).
     */
    explicit ScheduleCache(size_t capacity = 1024, size_t shards = 8);

    /** Look up a blob; bumps recency on hit. */
    std::optional<std::string> get(const ProblemKey& key);

    /** Insert or refresh an entry, evicting LRU if the shard is full. */
    void put(const ProblemKey& key, std::string blob);

    size_t size() const;
    size_t capacity() const { return capacity_; }
    Stats stats() const;

    /**
     * Persist every entry under @p dir (created if missing), one
     * checksummed file per entry. Returns the number written.
     */
    size_t save(const std::string& dir) const;

    /**
     * Load every "*.hsc" entry under @p dir, skipping (and reporting)
     * corrupt files. Missing directory = empty report, not an error.
     */
    LoadReport load(const std::string& dir);

  private:
    struct Entry {
        ProblemKey key;
        std::string blob;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recent
        std::unordered_map<std::string, std::list<Entry>::iterator> index;
        mutable Stats stats;
    };

    Shard& shardFor(const ProblemKey& key)
    {
        return shards_[key.hi % shards_.size()];
    }

    size_t capacity_;
    size_t perShardCapacity_;
    mutable std::vector<Shard> shards_;
};

/**
 * Load @p dir into @p cache under a "cache.warm" telemetry span,
 * recording `cache.warm.entries`, `cache.warm.skipped` and
 * `cache.warm.ms` counters — the startup warm-load every long-lived
 * entry point (CLI batch/run, the serve daemon) reports through
 * --stats-json.
 */
ScheduleCache::LoadReport warmLoad(ScheduleCache& cache,
                                   const std::string& dir,
                                   obs::Telemetry& telemetry);

} // namespace hecate::service
