#include "service/prewarm_index.hpp"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <vector>

#include "obs/telemetry.hpp"
#include "service/native_cache.hpp"
#include "support/timer.hpp"

namespace hecate::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kMagicLine = "hecate-native v1";

/**
 * Extract the canonical cache key from one `.hnm` metadata file
 * (format: magic line, checksum line, key-length line, key bytes).
 * Empty optional when the file is unreadable or malformed — the entry
 * is left for NativeCache::get() to validate and delete properly.
 */
std::optional<std::string>
readCanonicalKey(const fs::path& metaPath)
{
    std::ifstream in(metaPath, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in)
        return std::nullopt;
    const std::string meta = buffer.str();

    std::istringstream header(meta);
    std::string magic, checksum, sizeLine;
    if (!std::getline(header, magic) || !std::getline(header, checksum) ||
        !std::getline(header, sizeLine) || magic != kMagicLine)
        return std::nullopt;
    size_t keyLen = 0;
    try {
        keyLen = static_cast<size_t>(std::stoull(sizeLine));
    } catch (...) {
        return std::nullopt;
    }
    const size_t headerBytes =
        magic.size() + 1 + checksum.size() + 1 + sizeLine.size() + 1;
    if (meta.size() < headerBytes + keyLen)
        return std::nullopt;
    return meta.substr(headerBytes, keyLen);
}

} // namespace

PrewarmReport
prewarmNativeCache(NativeCache& cache, obs::Telemetry* telemetry)
{
    PrewarmReport report;
    if (cache.dir().empty())
        return report;
    Timer timer;

    // Collect first, load second: loading dlopen()s and mutates the
    // LRU, and directory iteration should not interleave with the
    // deletions get() performs on corrupt entries.
    std::vector<std::string> keys;
    std::error_code ec;
    for (fs::directory_iterator it(cache.dir(), ec), end;
         !ec && it != end; it.increment(ec)) {
        const fs::path& path = it->path();
        if (path.extension() != ".hnm")
            continue;
        ++report.scanned;
        if (std::optional<std::string> canonical = readCanonicalKey(path))
            keys.push_back(std::move(*canonical));
        else
            ++report.skipped;
    }

    for (std::string& canonical : keys) {
        ProblemKey key = makeKeyFromCanonical(std::move(canonical));
        if (cache.get(key) != nullptr)
            ++report.loaded;
        else
            ++report.skipped;
    }

    report.seconds = timer.seconds();
    if (telemetry != nullptr) {
        telemetry->add("native.prewarm.entries",
                       static_cast<double>(report.loaded));
        telemetry->add("native.prewarm.skipped",
                       static_cast<double>(report.skipped));
        telemetry->add("native.prewarm.ms", report.seconds * 1e3);
    }
    return report;
}

} // namespace hecate::service
