#include "service/problem_key.hpp"

#include <algorithm>
#include <vector>

#include "support/diagnostics.hpp"

namespace hecate::service {

uint64_t
fnv1a64(std::string_view data, uint64_t basis)
{
    uint64_t hash = basis;
    for (unsigned char byte : data) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
ProblemKey::digest() const
{
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(32);
    for (uint64_t word : {hi, lo}) {
        for (int shift = 60; shift >= 0; shift -= 4)
            out.push_back(hex[(word >> shift) & 0xf]);
    }
    return out;
}

ProblemKey
makeKeyFromCanonical(std::string canonical)
{
    ProblemKey key;
    key.hi = fnv1a64(canonical);
    key.lo = fnv1a64(canonical, 0x9e3779b97f4a7c15ull);
    key.canonical = std::move(canonical);
    return key;
}

namespace {

/** Canonical "s.a<i>" / "c<k>.a<i>" form of an access path in @p cls. */
std::string
canonicalSelect(const sem::Grammar& grammar, const sem::ClassInfo& cls,
                const ast::Select& select)
{
    if (select.isSelf()) {
        const sem::InterfaceInfo& iface = grammar.iface(cls.iface);
        return "s.a" + std::to_string(iface.attrByName.at(select.attr));
    }
    sem::ChildId child = cls.childByName.at(select.base);
    const sem::InterfaceInfo& child_iface =
        grammar.iface(cls.children[child].iface);
    return "c" + std::to_string(child) + ".a" +
           std::to_string(child_iface.attrByName.at(select.attr));
}

/** Canonical prefix form of a rule RHS expression. */
std::string
canonicalExpr(const sem::Grammar& grammar, const sem::ClassInfo& cls,
              const ast::Expr& expr)
{
    switch (expr.kind) {
      case ast::ExprKind::Const:
        return "#" + std::to_string(expr.value);
      case ast::ExprKind::Select:
        return canonicalSelect(grammar, cls, expr.select);
      case ast::ExprKind::Binary:
      case ast::ExprKind::Call:
      case ast::ExprKind::If: {
        std::string out = "(";
        out += expr.kind == ast::ExprKind::If ? "if" : expr.op;
        for (const ast::ExprPtr& arg : expr.args) {
            out += ' ';
            out += canonicalExpr(grammar, cls, *arg);
        }
        out += ')';
        return out;
      }
      case ast::ExprKind::Fold: {
        std::string out = "(fold " + expr.op;
        out += ' ';
        out += canonicalExpr(grammar, cls, *expr.args[0]);
        out += ' ';
        out += canonicalSelect(grammar, cls, expr.select);
        out += ')';
        return out;
      }
    }
    internalError("canonicalExpr: unknown expression kind");
}

/** Canonical LHS token of a rule ("s.a<i>" or "c<k>.a<i>"). */
std::string
canonicalLhs(const sem::RuleInfo& rule)
{
    if (rule.lhsChild == sem::kInvalidId)
        return "s.a" + std::to_string(rule.lhs);
    return "c" + std::to_string(rule.lhsChild) + ".a" +
           std::to_string(rule.lhs);
}

/** Canonical "lhs:=rhs" text of one rule. */
std::string
canonicalRule(const sem::Grammar& grammar, const sem::RuleInfo& rule)
{
    const sem::ClassInfo& cls = grammar.cls(rule.cls);
    return canonicalLhs(rule) + ":=" +
           canonicalExpr(grammar, cls, *rule.decl->rhs);
}

/** Canonical text of one traversal statement within class @p cls. */
void
canonicalStmt(const sched::Skeleton& skeleton, const sem::ClassInfo& cls,
              const ast::TStmt& stmt, std::string& out)
{
    switch (stmt.kind) {
      case ast::TStmtKind::Hole:
        out += "?;";
        return;
      case ast::TStmtKind::Recur:
        out += "r" + std::to_string(cls.childByName.at(stmt.child)) + ";";
        return;
      case ast::TStmtKind::Eval: {
        const sem::RuleInfo& rule =
            skeleton.grammar().rule(skeleton.evalRule(&stmt));
        out += "e" + canonicalLhs(rule) + ";";
        return;
      }
      case ast::TStmtKind::Iterate:
      case ast::TStmtKind::Parallel: {
        out += stmt.kind == ast::TStmtKind::Iterate ? "i" : "p";
        if (!stmt.child.empty())
            out += std::to_string(cls.childByName.at(stmt.child));
        out += '{';
        for (const ast::TStmtPtr& body : stmt.body)
            canonicalStmt(skeleton, cls, *body, out);
        out += '}';
        return;
      }
    }
}

/** Canonical config suffix: every knob that can change the answer. */
std::string
canonicalConfig(sem::InterfaceId rootIface,
                const synth::SynthesisConfig& config)
{
    std::string out = "|root:I" + std::to_string(rootIface);
    out += "|cfg:" + std::to_string(static_cast<int>(config.engine));
    out += ',' + std::to_string(config.verify.maxDepth);
    out += ',' + std::to_string(config.verify.maxCollection);
    out += ',' + std::to_string(config.verify.perSlotOptions);
    out += ',' + std::to_string(config.verify.limit);
    out += ',' + std::to_string(config.verify.randomRounds);
    out += ',' + std::to_string(config.verify.sampleDepthBump);
    out += ',' + std::to_string(config.maxIterations);
    out += ',' + std::to_string(config.seed);
    // Incremental encoding changes which consistent schedule each round
    // proposes (warm starts bias toward the previous assignment), so
    // runs with it on and off may legitimately converge to different
    // verified schedules; keep their cache entries apart. verifyThreads
    // and reuseVerifierState are pure cost knobs and stay out.
    out += ',' + std::to_string(config.incrementalEncoding ? 1 : 0);
    return out;
}

} // namespace

std::string
canonicalGrammar(const sem::Grammar& grammar)
{
    std::string out;
    for (const sem::InterfaceInfo& iface : grammar.interfaces()) {
        out += "I" + std::to_string(iface.id) + "{";
        for (const sem::AttributeInfo& attr : iface.attrs)
            out += attr.isInput ? "in;" : "out;";
        out += "}";
    }
    for (const sem::ClassInfo& cls : grammar.classes()) {
        out += "C" + std::to_string(cls.id) + ":I" +
               std::to_string(cls.iface) + "{";
        for (const sem::ChildInfo& child : cls.children) {
            out += "c" + std::to_string(child.id) + ":I" +
                   std::to_string(child.iface);
            if (child.optional)
                out += '?';
            if (child.collection)
                out += '*';
            std::vector<sem::ClassId> allowed = child.allowedClasses;
            std::sort(allowed.begin(), allowed.end());
            out += '[';
            for (sem::ClassId id : allowed)
                out += "C" + std::to_string(id) + ";";
            out += "];";
        }
        // Sorting the canonical rule texts makes the key independent of
        // rule declaration order.
        std::vector<std::string> rules;
        rules.reserve(cls.rules.size());
        for (sem::RuleId rule : cls.rules)
            rules.push_back(canonicalRule(grammar, grammar.rule(rule)));
        std::sort(rules.begin(), rules.end());
        for (const std::string& rule : rules)
            out += rule + ";";
        out += "}";
    }
    return out;
}

std::string
canonicalRuleToken(const sem::Grammar& grammar, sem::RuleId rule)
{
    const sem::RuleInfo& info = grammar.rule(rule);
    return "C" + std::to_string(info.cls) + "/" + canonicalLhs(info);
}

ProblemKey
makeProblemKey(const sched::Skeleton& skeleton, sem::InterfaceId rootIface,
               const synth::SynthesisConfig& config)
{
    const sem::Grammar& grammar = skeleton.grammar();
    std::string canonical = canonicalGrammar(grammar);
    // Cases in ClassId order — the surface case order is irrelevant.
    canonical += "|trav:";
    for (const sem::ClassInfo& cls : grammar.classes()) {
        canonical += "C" + std::to_string(cls.id) + "{";
        for (const ast::TStmtPtr& stmt : skeleton.caseFor(cls.id).stmts)
            canonicalStmt(skeleton, cls, *stmt, canonical);
        canonical += "}";
    }
    canonical += canonicalConfig(rootIface, config);
    return makeKeyFromCanonical(std::move(canonical));
}

ProblemKey
makeAutoProblemKey(const sem::Grammar& grammar, sem::InterfaceId rootIface,
                   const synth::SynthesisConfig& config)
{
    std::string canonical = canonicalGrammar(grammar);
    canonical += "|trav:auto";
    canonical += canonicalConfig(rootIface, config);
    return makeKeyFromCanonical(std::move(canonical));
}

} // namespace hecate::service
