#include "service/synth_service.hpp"

#include <exception>
#include <utility>

#include "support/timer.hpp"

namespace hecate::service {

namespace {

/** what() of the in-flight exception (for catch (...) handlers). */
std::string
currentExceptionWhat()
{
    try {
        throw;
    } catch (const std::exception& error) {
        return error.what();
    } catch (...) {
        return "non-std::exception value";
    }
}

} // namespace

SynthService::SynthService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheCapacity, config_.cacheShards),
      nativeTier_(config_.native), pool_(config_.workers)
{
}

SynthService::~SynthService()
{
    drain();
}

std::future<SynthOutcome>
SynthService::submit(SynthRequest request)
{
    auto promise = std::make_shared<std::promise<SynthOutcome>>();
    std::future<SynthOutcome> future = promise->get_future();
    // The promise must resolve on every path: if the task escaped with
    // an exception, the pool's record-and-continue boundary would eat
    // it and the caller's future would become a broken promise — a
    // drain() that then waited on it could never report the outcome.
    pool_.submit([this, promise, request = std::move(request)]() mutable {
        try {
            promise->set_value(process(request));
        } catch (...) {
            SynthOutcome out;
            out.ok = false;
            out.failure = currentExceptionWhat();
            ++failures_;
            promise->set_value(std::move(out));
        }
    });
    return future;
}

SynthOutcome
SynthService::runNow(const SynthRequest& request)
{
    return process(request);
}

BatchOutcome
SynthService::runBatch(const BatchRequest& request)
{
    BatchOutcome out;
    // Synthesis rides the normal cache / single-flight path, so a
    // thousand batch requests for one grammar still run CEGIS once.
    out.synth = process(request.synth);
    if (!out.synth.ok) {
        out.failure = out.synth.failure;
        return out;
    }

    obs::Telemetry local;
    try {
        pipeline::PipelineOptions options;
        options.config = request.synth.config;
        options.rootInterface = request.synth.rootInterface;
        options.cache = &cache_;
        options.telemetry = &local;
        options.nativeTier = &nativeTier_;
        options.tier = config_.tier;
        pipeline::Pipeline pipe(request.synth.grammarSrc,
                                request.synth.traversalSrc,
                                std::move(options));

        pipeline::ExecuteRequest exec;
        exec.gen = request.gen;
        exec.exec = request.exec;
        if (exec.exec.pool == nullptr)
            exec.exec.pool = &pool_;
        exec.batchCount = request.batchCount;
        // The schedule was just published to the cache, so this
        // resolves from there; wave chunks fork onto the service pool
        // (help-join keeps nested pool use deadlock-free).
        pipeline::ForestExecuteArtifact artifact = pipe.executeForest(exec);

        out.stats = artifact.stats;
        out.nodes = artifact.forest.size();
        out.checksum = artifact.forest.flat().checksum();
        out.generateSeconds = artifact.generateSeconds;
        out.executeSeconds = artifact.executeSeconds;
        out.ok = true;
    } catch (const std::exception& error) {
        // Not just Error: a parallel wave chunk rethrows whatever its
        // task threw, and a batch execution failure must resolve the
        // outcome rather than unwind past the caller's future.
        out.ok = false;
        out.failure = error.what();
    }
    if (request.synth.telemetry != nullptr)
        request.synth.telemetry->absorb(local);
    return out;
}

std::future<BatchOutcome>
SynthService::submitBatch(BatchRequest request)
{
    auto promise = std::make_shared<std::promise<BatchOutcome>>();
    std::future<BatchOutcome> future = promise->get_future();
    pool_.submit([this, promise, request = std::move(request)]() mutable {
        try {
            promise->set_value(runBatch(request));
        } catch (...) {
            BatchOutcome out;
            out.ok = false;
            out.failure = currentExceptionWhat();
            promise->set_value(std::move(out));
        }
    });
    return future;
}

void
SynthService::drain()
{
    pool_.waitAll();
}

ServiceStats
SynthService::stats() const
{
    ServiceStats stats;
    stats.requests = requests_.load();
    stats.cacheHits = cacheHits_.load();
    stats.joinedInFlight = joined_.load();
    stats.freshRuns = freshRuns_.load();
    stats.failures = failures_.load();
    return stats;
}

namespace {

/** Copy a successful synth artifact's answer into the outcome. */
void
adoptArtifact(SynthOutcome& out, const pipeline::SynthArtifact& artifact)
{
    out.ok = artifact.ok;
    out.schedule = artifact.schedule;
    out.concreteTraversal = artifact.concreteTraversal;
}

/** Summarize the request's telemetry into the outcome's stats map. */
void
snapshotStats(SynthOutcome& out, const obs::Telemetry& telemetry)
{
    out.stats = telemetry.counters();
    out.stats["encode.seconds"] = telemetry.spanSeconds("encode");
    out.stats["solve.seconds"] = telemetry.spanSeconds("solve");
    out.stats["verify.seconds"] = telemetry.spanSeconds("verify");
}

} // namespace

SynthOutcome
SynthService::process(const SynthRequest& request)
{
    SynthOutcome out;
    Timer timer;
    ++requests_;

    // Each request runs against its own sink: workers process requests
    // concurrently, and per-request spans must not interleave before
    // the final absorb into the caller's sink.
    obs::Telemetry local;

    auto finish = [&]() {
        snapshotStats(out, local);
        if (request.telemetry != nullptr)
            request.telemetry->absorb(local);
        out.seconds = timer.seconds();
        return out;
    };

    try {
        pipeline::PipelineOptions options;
        options.config = request.config;
        options.rootInterface = request.rootInterface;
        options.cache = &cache_;
        options.telemetry = &local;
        pipeline::Pipeline pipe(request.grammarSrc, request.traversalSrc,
                                std::move(options));
        const ProblemKey& key = pipe.problemKey();
        out.keyDigest = key.digest();

        // 1. Schedule cache.
        if (const pipeline::SynthArtifact* cached =
                pipe.synthesizeFromCache()) {
            out.provenance = Provenance::CacheHit;
            ++cacheHits_;
            adoptArtifact(out, *cached);
            return finish();
        }

        // 2. Single flight: join an identical in-flight request...
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(flightsMutex_);
            auto it = flights_.find(key.canonical);
            if (it != flights_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<Flight>();
                flight->future = flight->promise.get_future().share();
                flights_.emplace(key.canonical, flight);
                leader = true;
            }
        }
        if (!leader) {
            ++joined_;
            FlightResult result = flight->future.get();
            out.provenance = Provenance::JoinedInFlight;
            out.cegisIterations = result.cegisIterations;
            if (result.ok) {
                const pipeline::SynthArtifact& artifact =
                    pipe.adoptPayload(result.payload);
                if (artifact.ok) {
                    adoptArtifact(out, artifact);
                    return finish();
                }
                out.failure = artifact.failure;
            } else {
                out.failure = result.failure;
            }
            out.ok = false;
            ++failures_;
            return finish();
        }

        // 3. ...or lead: run the synthesizer, publish to followers (the
        // pipeline itself publishes to the cache on success). The
        // guard makes publication unconditional: if anything on the
        // leader path throws past the catches below (OOM, a bug, a
        // throwing test hook), the flight still resolves with a
        // failure — otherwise every queued duplicate would block on
        // the flight future forever and drain() would never return.
        struct FlightPublisher {
            SynthService* service;
            std::shared_ptr<Flight> flight;
            const std::string& canonical;
            bool done = false;

            void publish(FlightResult result)
            {
                if (done)
                    return;
                done = true;
                {
                    std::lock_guard<std::mutex> lock(
                        service->flightsMutex_);
                    service->flights_.erase(canonical);
                }
                flight->promise.set_value(std::move(result));
            }

            ~FlightPublisher()
            {
                // Runs during unwinding, so the exception in flight is
                // not inspectable here (it is not being handled yet).
                if (!done) {
                    FlightResult abandoned;
                    abandoned.ok = false;
                    abandoned.failure =
                        "leader abandoned the flight (exception on the "
                        "leader path)";
                    publish(std::move(abandoned));
                }
            }
        } publisher{this, flight, key.canonical};

        if (config_.onLeaderSynthesis)
            config_.onLeaderSynthesis();
        FlightResult result;
        try {
            const pipeline::SynthArtifact& artifact = pipe.synthesize();
            result.ok = artifact.ok;
            result.payload = artifact.payload;
            result.cegisIterations = artifact.cegisIterations;
            result.failure = artifact.failure;
            if (artifact.ok)
                adoptArtifact(out, artifact);
        } catch (const Error& error) {
            result.ok = false;
            result.failure = error.what();
        }
        publisher.publish(result);

        ++freshRuns_;
        out.provenance = Provenance::FreshRun;
        out.cegisIterations = result.cegisIterations;
        out.ok = result.ok;
        if (!result.ok) {
            out.failure = result.failure;
            ++failures_;
        }
    } catch (const std::exception& error) {
        // Error and everything else alike: a request must resolve to
        // an outcome, or drain() could not complete deterministically.
        out.ok = false;
        out.failure = error.what();
        ++failures_;
    }
    return finish();
}

} // namespace hecate::service
