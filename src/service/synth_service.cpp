#include "service/synth_service.hpp"

#include <cstdlib>
#include <utility>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/timer.hpp"
#include "synth/autotuner.hpp"

namespace hecate::service {

namespace {

/// Payload markers: what kind of skeleton the cached schedule is for.
constexpr const char* kGivenMarker = "given";
constexpr const char* kAutoMarker = "auto";

std::string
makePayload(bool autoMode, synth::SkeletonStyle style,
            const sched::Skeleton& skeleton,
            const sched::Schedule& schedule)
{
    std::string payload;
    if (autoMode) {
        payload = std::string(kAutoMarker) + " " +
                  std::to_string(static_cast<int>(style)) + "\n";
    } else {
        payload = std::string(kGivenMarker) + "\n";
    }
    payload += encodePortableSchedule(skeleton, schedule);
    return payload;
}

} // namespace

const char*
provenanceName(Provenance provenance)
{
    switch (provenance) {
      case Provenance::CacheHit:
        return "cache";
      case Provenance::JoinedInFlight:
        return "joined";
      case Provenance::FreshRun:
        return "fresh";
    }
    return "?";
}

SynthService::SynthService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheCapacity, config_.cacheShards),
      pool_(config_.workers)
{
}

SynthService::~SynthService()
{
    drain();
}

std::future<SynthOutcome>
SynthService::submit(SynthRequest request)
{
    auto promise = std::make_shared<std::promise<SynthOutcome>>();
    std::future<SynthOutcome> future = promise->get_future();
    pool_.submit([this, promise, request = std::move(request)]() mutable {
        promise->set_value(process(request));
    });
    return future;
}

SynthOutcome
SynthService::runNow(const SynthRequest& request)
{
    return process(request);
}

void
SynthService::drain()
{
    pool_.waitAll();
}

ServiceStats
SynthService::stats() const
{
    ServiceStats stats;
    stats.requests = requests_.load();
    stats.cacheHits = cacheHits_.load();
    stats.joinedInFlight = joined_.load();
    stats.freshRuns = freshRuns_.load();
    stats.failures = failures_.load();
    return stats;
}

/**
 * Turn a cached/joined payload back into a schedule + printed
 * traversal for @p grammar. For "auto" payloads the winning skeleton
 * style is rebuilt; for "given" payloads the request's own resolved
 * skeleton is used. Returns false when the payload cannot be decoded
 * (version skew, slot mismatch) — callers fall back to a fresh run.
 */
bool
SynthService::materialize(const sem::Grammar& grammar,
                          std::optional<sched::Skeleton>& skeleton,
                          const std::string& payload, SynthOutcome& out)
{
    size_t newline = payload.find('\n');
    if (newline == std::string::npos)
        return false;
    std::string header = payload.substr(0, newline);
    std::string blob = payload.substr(newline + 1);

    if (header.rfind(kAutoMarker, 0) == 0 &&
        header.size() > std::string(kAutoMarker).size()) {
        int style = std::atoi(header.c_str() + 5);
        if (style < 0 ||
            style > static_cast<int>(synth::SkeletonStyle::DoublePost)) {
            return false;
        }
        skeleton.emplace(sched::Skeleton::resolve(
            grammar,
            synth::makeSkeleton(grammar,
                                static_cast<synth::SkeletonStyle>(style))));
    } else if (header != kGivenMarker || !skeleton.has_value()) {
        return false;
    }

    std::optional<sched::Schedule> schedule =
        decodePortableSchedule(*skeleton, blob);
    if (!schedule.has_value())
        return false;
    out.concreteTraversal =
        lang::printTraversal(schedule->toConcreteTraversal(*skeleton));
    out.schedule = std::move(schedule);
    out.ok = true;
    return true;
}

/** Leader path: run CEGIS (or the auto-tuner) and build the payload. */
SynthService::FlightResult
SynthService::runLeader(const SynthRequest& request,
                        const sem::Grammar& grammar, sem::InterfaceId root,
                        std::optional<sched::Skeleton>& skeleton,
                        SynthOutcome& out)
{
    FlightResult flight;
    // Phase breakdown of the synthesis run this leader performed. The
    // SAT engine reports encode/solve through generalStats, the ILP
    // engine through ilpStats; only one is nonzero per run.
    auto recordPhases = [&out](const synth::SynthesisResult& result) {
        out.encodeSeconds = result.generalStats.encodeSeconds +
                            result.ilpStats.encodeSeconds;
        out.solveSeconds = result.generalStats.solveSeconds +
                           result.ilpStats.solveSeconds;
        out.verifySeconds = result.verifySeconds;
        out.planCacheHits = result.planCacheHits;
        out.planCacheMisses = result.planCacheMisses;
    };
    const bool autoMode = !skeleton.has_value();
    if (autoMode) {
        synth::AutotuneResult tuned =
            synth::autotune(grammar, root, request.config);
        flight.cegisIterations = tuned.lastSynthesis.cegisIterations;
        recordPhases(tuned.lastSynthesis);
        if (!tuned.schedule.has_value()) {
            flight.failure = "auto-tuning failed: " +
                             tuned.lastSynthesis.failure;
            return flight;
        }
        skeleton = std::move(tuned.skeleton);
        flight.payload = makePayload(true, tuned.style, *skeleton,
                                     *tuned.schedule);
        out.schedule = std::move(tuned.schedule);
    } else {
        synth::SynthesisResult result =
            synth::synthesize(*skeleton, root, {}, request.config);
        flight.cegisIterations = result.cegisIterations;
        recordPhases(result);
        if (!result.schedule.has_value()) {
            flight.failure = "synthesis failed: " + result.failure;
            return flight;
        }
        flight.payload = makePayload(false, synth::SkeletonStyle::PostOrder,
                                     *skeleton, *result.schedule);
        out.schedule = std::move(result.schedule);
    }
    out.concreteTraversal =
        lang::printTraversal(out.schedule->toConcreteTraversal(*skeleton));
    flight.ok = true;
    return flight;
}

SynthOutcome
SynthService::process(const SynthRequest& request)
{
    SynthOutcome out;
    Timer timer;
    ++requests_;
    try {
        sem::Grammar grammar =
            sem::Grammar::analyze(lang::parseGrammar(request.grammarSrc));
        sem::InterfaceId root =
            request.rootInterface.empty()
                ? grammar.cls(0).iface
                : grammar.findInterface(request.rootInterface);
        if (root == sem::kInvalidId) {
            userError("unknown root interface '" + request.rootInterface +
                      "'");
        }

        std::optional<sched::Skeleton> skeleton;
        ProblemKey key;
        if (request.traversalSrc.empty()) {
            key = makeAutoProblemKey(grammar, root, request.config);
        } else {
            skeleton.emplace(sched::Skeleton::resolve(
                grammar, lang::parseTraversal(request.traversalSrc)));
            key = makeProblemKey(*skeleton, root, request.config);
        }
        out.keyDigest = key.digest();

        // 1. Schedule cache.
        if (std::optional<std::string> blob = cache_.get(key)) {
            if (materialize(grammar, skeleton, *blob, out)) {
                out.provenance = Provenance::CacheHit;
                ++cacheHits_;
                out.seconds = timer.seconds();
                return out;
            }
            // Undecodable entry (version skew): treat as a miss.
        }

        // 2. Single flight: join an identical in-flight request...
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(flightsMutex_);
            auto it = flights_.find(key.canonical);
            if (it != flights_.end()) {
                flight = it->second;
            } else {
                flight = std::make_shared<Flight>();
                flight->future = flight->promise.get_future().share();
                flights_.emplace(key.canonical, flight);
                leader = true;
            }
        }
        if (!leader) {
            ++joined_;
            FlightResult result = flight->future.get();
            out.provenance = Provenance::JoinedInFlight;
            out.cegisIterations = result.cegisIterations;
            if (result.ok &&
                materialize(grammar, skeleton, result.payload, out)) {
                out.seconds = timer.seconds();
                return out;
            }
            out.ok = false;
            out.failure = result.ok ? "could not decode leader's schedule"
                                    : result.failure;
            ++failures_;
            out.seconds = timer.seconds();
            return out;
        }

        // 3. ...or lead: run the synthesizer, publish to cache+followers.
        if (config_.onLeaderSynthesis)
            config_.onLeaderSynthesis();
        FlightResult result;
        try {
            result = runLeader(request, grammar, root, skeleton, out);
        } catch (const Error& error) {
            result.ok = false;
            result.failure = error.what();
        }
        if (result.ok)
            cache_.put(key, result.payload);
        {
            std::lock_guard<std::mutex> lock(flightsMutex_);
            flights_.erase(key.canonical);
        }
        flight->promise.set_value(result);

        ++freshRuns_;
        out.provenance = Provenance::FreshRun;
        out.cegisIterations = result.cegisIterations;
        out.ok = result.ok;
        if (!result.ok) {
            out.failure = result.failure;
            ++failures_;
        }
    } catch (const Error& error) {
        out.ok = false;
        out.failure = error.what();
        ++failures_;
    }
    out.seconds = timer.seconds();
    return out;
}

} // namespace hecate::service
