#pragma once

/**
 * @file
 * Native-tier cache prewarm: scan a NativeCache's on-disk artifact
 * store and pull every valid entry into the in-memory LRU up front.
 *
 * Under `--tier auto` the first request for a (problem, schedule) pair
 * runs on bytecode while poll() resolves the module — even when a
 * previous daemon run already persisted the compiled `.so`, because
 * the disk index is only consulted on the first miss. Prewarming at
 * daemon startup moves that validation + dlopen work off the request
 * path: the serve daemon spawns this scan on a background thread, so
 * by the time real traffic arrives, warm keys hot-swap to native on
 * their very first poll.
 *
 * Each `<digest>.hnm` metadata file embeds the full canonical cache
 * key, so the scan reconstructs keys without re-deriving them from
 * grammars; NativeCache::get() then does its usual validation
 * (checksum, exact key match) and deletes corrupt entries.
 */

#include <cstddef>
#include <string>

namespace hecate::obs {
class Telemetry;
}

namespace hecate::service {

class NativeCache;

/** What one prewarm scan did. */
struct PrewarmReport {
    size_t scanned = 0; ///< metadata files visited
    size_t loaded = 0;  ///< modules now resident in memory
    size_t skipped = 0; ///< unreadable / corrupt (deleted by get())
    double seconds = 0.0;
};

/**
 * Scan @p cache's disk store and load every valid artifact into the
 * in-memory LRU. No-op (all-zero report) when the cache has no disk
 * dir. When @p telemetry is non-null, records `native.prewarm.entries`,
 * `native.prewarm.skipped` and `native.prewarm.ms`. Never throws:
 * filesystem errors just leave entries unloaded.
 */
PrewarmReport prewarmNativeCache(NativeCache& cache,
                                 obs::Telemetry* telemetry);

} // namespace hecate::service
