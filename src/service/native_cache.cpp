#include "service/native_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace hecate::service {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Key derivation
// ---------------------------------------------------------------------------

ProblemKey
makeNativeKey(const ProblemKey& problem, const std::string& schedulePayload,
              const std::string& formName,
              const std::string& compilerIdentity, uint32_t emitterVersion,
              uint32_t abiVersion)
{
    std::string canonical = "hecnative v1\n";
    canonical += "emitter " + std::to_string(emitterVersion) + "\n";
    canonical += "abi " + std::to_string(abiVersion) + "\n";
    canonical += "form " + formName + "\n";
    canonical += "compiler " + compilerIdentity + "\n";
    canonical +=
        "schedule " + std::to_string(schedulePayload.size()) + "\n";
    canonical += schedulePayload;
    canonical += "\nproblem\n";
    canonical += problem.canonical;
    return makeKeyFromCanonical(std::move(canonical));
}

// ---------------------------------------------------------------------------
// Disk helpers
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kMagicLine = "hecate-native v1";

std::string
hex16(uint64_t value)
{
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
        out[i] = hex[(value >> (60 - 4 * i)) & 0xf];
    return out;
}

/** Whole file as bytes; empty optional when unreadable. */
std::optional<std::string>
slurp(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in)
        return std::nullopt;
    return buffer.str();
}

} // namespace

// ---------------------------------------------------------------------------
// NativeCache
// ---------------------------------------------------------------------------

NativeCache::NativeCache(std::string dir, size_t capacity, size_t shards)
    : dir_(std::move(dir)), capacity_(capacity == 0 ? 1 : capacity),
      shards_(shards == 0 ? 1 : shards)
{
    perShardCapacity_ = (capacity_ + shards_.size() - 1) / shards_.size();
    if (perShardCapacity_ == 0)
        perShardCapacity_ = 1;
}

void
NativeCache::insertLocked(Shard& shard, const ProblemKey& key,
                          std::shared_ptr<codegen::NativeModule> module)
{
    auto it = shard.index.find(key.canonical);
    if (it != shard.index.end()) {
        it->second->module = std::move(module);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, std::move(module)});
    shard.index.emplace(key.canonical, shard.lru.begin());
    ++shard.stats.insertions;
    while (shard.lru.size() > perShardCapacity_) {
        // Memory-only eviction: the disk artifact stays, and running
        // executions keep the module mapped via their shared_ptr.
        shard.index.erase(shard.lru.back().key.canonical);
        shard.lru.pop_back();
        ++shard.stats.evictions;
    }
}

std::shared_ptr<codegen::NativeModule>
NativeCache::loadFromDisk(Shard& shard, const ProblemKey& key)
{
    if (dir_.empty())
        return nullptr;
    fs::path soPath = fs::path(dir_) / (key.digest() + ".so");
    fs::path metaPath = fs::path(dir_) / (key.digest() + ".hnm");

    std::error_code ec;
    if (!fs::exists(metaPath, ec) && !fs::exists(soPath, ec))
        return nullptr; // clean miss, nothing to evict

    auto corrupt = [&]() -> std::shared_ptr<codegen::NativeModule> {
        std::error_code ignored;
        fs::remove(soPath, ignored);
        fs::remove(metaPath, ignored);
        ++shard.stats.corruptEvicted;
        return nullptr;
    };

    // Validate metadata and checksum the actual bytes BEFORE dlopen —
    // a truncated or tampered object must never reach the loader.
    std::optional<std::string> meta = slurp(metaPath);
    if (!meta)
        return corrupt();
    std::istringstream header(*meta);
    std::string magic, checksum, sizeLine;
    if (!std::getline(header, magic) || !std::getline(header, checksum) ||
        !std::getline(header, sizeLine) || magic != kMagicLine)
        return corrupt();
    size_t keySize = 0;
    try {
        keySize = std::stoul(sizeLine);
    } catch (const std::exception&) {
        return corrupt();
    }
    const size_t keyStart =
        magic.size() + 1 + checksum.size() + 1 + sizeLine.size() + 1;
    if (keyStart + keySize != meta->size() ||
        meta->compare(keyStart, keySize, key.canonical) != 0)
        return corrupt(); // digest collision or truncated key

    std::optional<std::string> soBytes = slurp(soPath);
    if (!soBytes || hex16(fnv1a64(*soBytes)) != checksum)
        return corrupt();

    std::string loadError;
    std::shared_ptr<codegen::NativeModule> module =
        codegen::NativeModule::load(soPath.string(), &loadError);
    if (!module)
        return corrupt(); // checksummed but unloadable (e.g. ABI skew)
    return module;
}

std::shared_ptr<codegen::NativeModule>
NativeCache::get(const ProblemKey& key, bool* fromDisk)
{
    if (fromDisk)
        *fromDisk = false;
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key.canonical);
    if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.stats.hits;
        return it->second->module;
    }
    std::shared_ptr<codegen::NativeModule> module =
        loadFromDisk(shard, key);
    if (!module) {
        ++shard.stats.misses;
        return nullptr;
    }
    ++shard.stats.diskHits;
    insertLocked(shard, key, module);
    return module;
}

std::shared_ptr<codegen::NativeModule>
NativeCache::adopt(const ProblemKey& key, const std::string& soPath,
                   std::string* error)
{
    std::string loadPath = soPath;
    if (!dir_.empty()) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        fs::path storedSo = fs::path(dir_) / (key.digest() + ".so");
        fs::path storedMeta = fs::path(dir_) / (key.digest() + ".hnm");
        fs::copy_file(soPath, storedSo,
                      fs::copy_options::overwrite_existing, ec);
        if (!ec) {
            std::optional<std::string> bytes = slurp(storedSo);
            std::ofstream meta(storedMeta,
                               std::ios::binary | std::ios::trunc);
            if (bytes && meta) {
                meta << kMagicLine << '\n'
                     << hex16(fnv1a64(*bytes)) << '\n'
                     << key.canonical.size() << '\n'
                     << key.canonical;
            }
            if (bytes && meta)
                loadPath = storedSo.string();
        }
        // Persistence failures degrade to memory-only — the compile
        // already succeeded, so serve it from the temp path.
    }

    std::shared_ptr<codegen::NativeModule> module =
        codegen::NativeModule::load(loadPath, error);
    if (!module)
        return nullptr;
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    insertLocked(shard, key, module);
    return module;
}

size_t
NativeCache::size() const
{
    size_t total = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.lru.size();
    }
    return total;
}

NativeCache::Stats
NativeCache::stats() const
{
    Stats total;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total.hits += shard.stats.hits;
        total.misses += shard.stats.misses;
        total.diskHits += shard.stats.diskHits;
        total.insertions += shard.stats.insertions;
        total.evictions += shard.stats.evictions;
        total.corruptEvicted += shard.stats.corruptEvicted;
    }
    return total;
}

} // namespace hecate::service
