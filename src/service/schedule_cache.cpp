#include "service/schedule_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/telemetry.hpp"
#include "support/timer.hpp"

namespace hecate::service {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Portable schedule encoding
// ---------------------------------------------------------------------------

namespace {

void
collectHoles(const sched::Skeleton& skeleton, const ast::TStmt& stmt,
             std::vector<sched::SlotId>& order)
{
    if (stmt.kind == ast::TStmtKind::Hole) {
        order.push_back(skeleton.slotOf(&stmt));
    } else if (stmt.kind == ast::TStmtKind::Iterate ||
               stmt.kind == ast::TStmtKind::Parallel) {
        for (const ast::TStmtPtr& body : stmt.body)
            collectHoles(skeleton, *body, order);
    }
}

/**
 * Slot ids in *canonical* order: cases walked in ClassId order (the
 * same normalization ProblemKey applies), holes in statement order.
 * SlotIds themselves follow the surface case order, so two skeletons
 * with the same ProblemKey can number their slots differently — this
 * ordering is what makes the encoding portable between them.
 */
std::vector<sched::SlotId>
canonicalSlotOrder(const sched::Skeleton& skeleton)
{
    std::vector<sched::SlotId> order;
    order.reserve(skeleton.slotCount());
    for (const sem::ClassInfo& cls : skeleton.grammar().classes()) {
        for (const ast::TStmtPtr& stmt : skeleton.caseFor(cls.id).stmts)
            collectHoles(skeleton, *stmt, order);
    }
    return order;
}

} // namespace

std::string
encodePortableSchedule(const sched::Skeleton& skeleton,
                       const sched::Schedule& schedule)
{
    const sem::Grammar& grammar = skeleton.grammar();
    std::string out = "hecsched v1\n";
    out += std::to_string(schedule.bySlot.size());
    out += '\n';
    for (sched::SlotId slot : canonicalSlotOrder(skeleton)) {
        const auto& assignment = schedule.bySlot[slot];
        out += assignment.has_value()
                   ? canonicalRuleToken(grammar, *assignment)
                   : std::string("-");
        out += '\n';
    }
    return out;
}

std::optional<sched::Schedule>
decodePortableSchedule(const sched::Skeleton& skeleton,
                       std::string_view blob)
{
    std::istringstream in{std::string(blob)};
    std::string magic, version;
    size_t count = 0;
    if (!(in >> magic >> version >> count) || magic != "hecsched" ||
        version != "v1" || count != skeleton.slotCount()) {
        return std::nullopt;
    }

    // Canonical token -> RuleId for the *requesting* grammar. Tokens
    // are stable across isomorphic renames, so this remaps a cached
    // schedule onto a grammar with differently-numbered rules.
    const sem::Grammar& grammar = skeleton.grammar();
    std::unordered_map<std::string, sem::RuleId> byToken;
    byToken.reserve(grammar.ruleCount());
    for (const sem::RuleInfo& rule : grammar.rules())
        byToken.emplace(canonicalRuleToken(grammar, rule.id), rule.id);

    sched::Schedule schedule;
    schedule.bySlot.assign(count, std::nullopt);
    for (sched::SlotId slot : canonicalSlotOrder(skeleton)) {
        std::string token;
        if (!(in >> token))
            return std::nullopt;
        if (token == "-")
            continue;
        auto it = byToken.find(token);
        if (it == byToken.end())
            return std::nullopt;
        schedule.bySlot[slot] = it->second;
    }
    return schedule;
}

// ---------------------------------------------------------------------------
// Sharded LRU
// ---------------------------------------------------------------------------

ScheduleCache::ScheduleCache(size_t capacity, size_t shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      shards_(shards == 0 ? 1 : shards)
{
    perShardCapacity_ = (capacity_ + shards_.size() - 1) / shards_.size();
    if (perShardCapacity_ == 0)
        perShardCapacity_ = 1;
}

std::optional<std::string>
ScheduleCache::get(const ProblemKey& key)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key.canonical);
    if (it == shard.index.end()) {
        ++shard.stats.misses;
        return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.stats.hits;
    return it->second->blob;
}

void
ScheduleCache::put(const ProblemKey& key, std::string blob)
{
    Shard& shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key.canonical);
    if (it != shard.index.end()) {
        it->second->blob = std::move(blob);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(Entry{key, std::move(blob)});
    shard.index.emplace(key.canonical, shard.lru.begin());
    ++shard.stats.insertions;
    while (shard.lru.size() > perShardCapacity_) {
        shard.index.erase(shard.lru.back().key.canonical);
        shard.lru.pop_back();
        ++shard.stats.evictions;
    }
}

size_t
ScheduleCache::size() const
{
    size_t total = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.lru.size();
    }
    return total;
}

ScheduleCache::Stats
ScheduleCache::stats() const
{
    Stats total;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total.hits += shard.stats.hits;
        total.misses += shard.stats.misses;
        total.insertions += shard.stats.insertions;
        total.evictions += shard.stats.evictions;
    }
    return total;
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kMagicLine = "hecate-cache v1";

std::string
checksumHex(std::string_view canonical, std::string_view blob)
{
    uint64_t sum = fnv1a64(canonical);
    sum = fnv1a64("\x1f", sum); // separator: (a,b) != (a', b') reshuffles
    sum = fnv1a64(blob, sum);
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i)
        out[i] = hex[(sum >> (60 - 4 * i)) & 0xf];
    return out;
}

} // namespace

size_t
ScheduleCache::save(const std::string& dir) const
{
    fs::create_directories(dir);
    size_t written = 0;
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const Entry& entry : shard.lru) {
            fs::path path =
                fs::path(dir) / (entry.key.digest() + ".hsc");
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            if (!out)
                continue;
            out << kMagicLine << '\n'
                << checksumHex(entry.key.canonical, entry.blob) << '\n'
                << entry.key.canonical.size() << '\n'
                << entry.key.canonical << entry.blob;
            if (out)
                ++written;
        }
    }
    return written;
}

ScheduleCache::LoadReport
ScheduleCache::load(const std::string& dir)
{
    LoadReport report;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return report;

    for (const fs::directory_entry& file : fs::directory_iterator(dir, ec)) {
        if (!file.is_regular_file() || file.path().extension() != ".hsc")
            continue;
        const std::string name = file.path().filename().string();
        auto skip = [&](const std::string& why) {
            ++report.skipped;
            report.diagnostics.push_back("cache entry '" + name +
                                         "' skipped: " + why);
        };

        std::ifstream in(file.path(), std::ios::binary);
        if (!in) {
            skip("unreadable");
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const std::string bytes = buffer.str();

        std::istringstream header(bytes);
        std::string magic, checksum, sizeLine;
        if (!std::getline(header, magic) ||
            !std::getline(header, checksum) ||
            !std::getline(header, sizeLine)) {
            skip("truncated header");
            continue;
        }
        if (magic != kMagicLine) {
            skip("bad magic/version '" + magic + "'");
            continue;
        }
        size_t keySize = 0;
        try {
            keySize = std::stoul(sizeLine);
        } catch (const std::exception&) {
            skip("bad key-size line");
            continue;
        }
        const size_t payloadStart =
            magic.size() + 1 + checksum.size() + 1 + sizeLine.size() + 1;
        if (payloadStart + keySize > bytes.size()) {
            skip("truncated payload");
            continue;
        }
        std::string canonical = bytes.substr(payloadStart, keySize);
        std::string blob = bytes.substr(payloadStart + keySize);
        if (checksumHex(canonical, blob) != checksum) {
            skip("checksum mismatch");
            continue;
        }

        ProblemKey key = makeKeyFromCanonical(std::move(canonical));
        put(key, std::move(blob));
        ++report.loaded;
    }
    return report;
}

ScheduleCache::LoadReport
warmLoad(ScheduleCache& cache, const std::string& dir,
         obs::Telemetry& telemetry)
{
    obs::Span span = telemetry.span("cache.warm", "stage");
    Timer timer;
    ScheduleCache::LoadReport report = cache.load(dir);
    telemetry.add("cache.warm.entries",
                  static_cast<double>(report.loaded));
    telemetry.add("cache.warm.skipped",
                  static_cast<double>(report.skipped));
    telemetry.set("cache.warm.ms", timer.seconds() * 1e3);
    return report;
}

} // namespace hecate::service
