#pragma once

/**
 * @file
 * Content-addressed identity of a synthesis problem.
 *
 * A ProblemKey is a canonical serialization (plus a 128-bit hash) of
 * the triple (grammar, skeleton, SynthesisConfig) that two requests
 * share exactly when they pose the same synthesis problem:
 *
 *  - every interface, class, attribute and child name is replaced by
 *    its dense positional id, so renamed-but-isomorphic grammars
 *    serialize identically;
 *  - rules within a class are serialized to canonical strings and
 *    sorted, so rule declaration order is irrelevant;
 *  - traversal cases are emitted in ClassId order with holes, recurs
 *    and evals in canonical form, so the skeleton's surface spelling
 *    (names, case order) is irrelevant;
 *  - every knob of SynthesisConfig that can change the answer is
 *    appended verbatim.
 *
 * The canonical string — not the hash — is the cache key, so hash
 * collisions can never alias two different problems. The service
 * layer (schedule_cache, synth_service) keys everything on it.
 */

#include <cstdint>
#include <string>

#include "sched/schedule.hpp"
#include "synth/cegis.hpp"

namespace hecate::service {

/** FNV-1a 64-bit hash of @p data starting from @p basis. */
uint64_t fnv1a64(std::string_view data,
                 uint64_t basis = 0xcbf29ce484222325ull);

/** Content-addressed identity of a synthesis problem. */
struct ProblemKey {
    std::string canonical; ///< exact key; hash is derived
    uint64_t hi = 0;       ///< fnv1a64(canonical)
    uint64_t lo = 0;       ///< fnv1a64(canonical, alternate basis)

    /** 32 hex chars naming this key (cache file names, reports). */
    std::string digest() const;

    bool operator==(const ProblemKey& other) const
    {
        return canonical == other.canonical;
    }
};

/** Wrap an already-canonical string as a ProblemKey (derives hashes). */
ProblemKey makeKeyFromCanonical(std::string canonical);

/** Canonical (rename-invariant, rule-order-invariant) grammar text. */
std::string canonicalGrammar(const sem::Grammar& grammar);

/**
 * Canonical name of one rule, unique within its grammar and stable
 * across isomorphic renames: "C<cls>/s.a<attr>" for self writes,
 * "C<cls>/c<child>.a<attr>" for inherited (child-target) writes.
 * The portable schedule encoding (schedule_cache) is built on it.
 */
std::string canonicalRuleToken(const sem::Grammar& grammar,
                               sem::RuleId rule);

/** Key of a synthesis problem with a user-supplied skeleton. */
ProblemKey makeProblemKey(const sched::Skeleton& skeleton,
                          sem::InterfaceId rootIface,
                          const synth::SynthesisConfig& config);

/**
 * Key of an auto-tuned problem (no skeleton given): the grammar and
 * config alone, tagged so it can never collide with a skeleton key.
 */
ProblemKey makeAutoProblemKey(const sem::Grammar& grammar,
                              sem::InterfaceId rootIface,
                              const synth::SynthesisConfig& config);

} // namespace hecate::service
