#pragma once

/**
 * @file
 * Sharded LRU cache of loaded native-tier modules with a checksummed
 * on-disk artifact store — ScheduleCache's design applied to `.so`
 * files, so warm starts skip the out-of-process compile entirely.
 *
 * ## Cache key
 *
 * A native artifact is only reusable when *everything* that shaped its
 * machine code matches, so the key (built by makeNativeKey, reusing
 * the ProblemKey machinery) concatenates:
 *
 *  - the synthesis problem's own canonical key (grammar + skeleton +
 *    config, rename-invariant),
 *  - the portable schedule blob (which rules run where),
 *  - the emitted code shape ("recursive" / "linear"),
 *  - kNativeEmitterVersion and HECATE_NATIVE_ABI_VERSION,
 *  - the compiler identity string (path + version line).
 *
 * Flipping any one component yields a different key and therefore a
 * recompile — stale artifacts are unreachable by construction.
 *
 * ## Disk format
 *
 * Two files per entry under the cache dir, named by the key digest:
 *
 *     <digest>.so    the shared object as produced by the compiler
 *     <digest>.hnm   metadata:  hecate-native v1\n
 *                               <fnv1a64 of .so bytes, 16 hex>\n
 *                               <byte length of canonical key>\n
 *                               <canonical key bytes>
 *
 * get() validates the metadata (magic, exact canonical key match — the
 * digest is just a filename, never trusted — and the checksum of the
 * actual `.so` bytes) BEFORE any dlopen; a truncated or corrupted
 * entry is deleted and counted in Stats::corruptEvicted, never loaded.
 * Memory eviction (LRU) does not touch the disk copy — persistence is
 * the point — and in-flight executions keep evicted modules alive
 * through their shared_ptr.
 */

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "codegen/native_loader.hpp"
#include "service/problem_key.hpp"

namespace hecate::service {

/**
 * Build the native cache key for @p problem executed under
 * @p schedulePayload (the portable blob), code shape @p formName, and
 * @p compilerIdentity. @p emitterVersion / @p abiVersion default to
 * the build's own; tests flip them to prove each component
 * invalidates.
 */
ProblemKey makeNativeKey(const ProblemKey& problem,
                         const std::string& schedulePayload,
                         const std::string& formName,
                         const std::string& compilerIdentity,
                         uint32_t emitterVersion,
                         uint32_t abiVersion);

/** Sharded LRU of loaded modules + checksummed on-disk artifacts. */
class NativeCache {
  public:
    /** Monotonic operation counters (aggregated across shards). */
    struct Stats {
        uint64_t hits = 0;       ///< in-memory hits
        uint64_t misses = 0;     ///< neither memory nor disk had it
        uint64_t diskHits = 0;   ///< revived from a persisted artifact
        uint64_t insertions = 0;
        uint64_t evictions = 0;      ///< LRU (memory only)
        uint64_t corruptEvicted = 0; ///< invalid disk entries deleted
    };

    /**
     * @p dir empty = memory-only (no persistence). @p capacity total
     * loaded modules across @p shards shards.
     */
    explicit NativeCache(std::string dir = {}, size_t capacity = 64,
                         size_t shards = 4);

    /**
     * Look up a module: memory first (bumps recency), then the disk
     * store (validated, then dlopen'ed and indexed). @p fromDisk, when
     * given, reports which level hit.
     */
    std::shared_ptr<codegen::NativeModule> get(const ProblemKey& key,
                                               bool* fromDisk = nullptr);

    /**
     * Adopt a freshly compiled artifact: persist @p soPath into the
     * store (when a dir is configured), load it, and index it under
     * @p key. Returns the loaded module, or nullptr with @p error when
     * the object cannot be loaded. The caller still owns @p soPath's
     * temp dir.
     */
    std::shared_ptr<codegen::NativeModule>
    adopt(const ProblemKey& key, const std::string& soPath,
          std::string* error = nullptr);

    size_t size() const;
    size_t capacity() const { return capacity_; }
    const std::string& dir() const { return dir_; }
    Stats stats() const;

  private:
    struct Entry {
        ProblemKey key;
        std::shared_ptr<codegen::NativeModule> module;
    };

    struct Shard {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recent
        std::unordered_map<std::string, std::list<Entry>::iterator> index;
        mutable Stats stats;
    };

    Shard& shardFor(const ProblemKey& key)
    {
        return shards_[key.hi % shards_.size()];
    }

    void insertLocked(Shard& shard, const ProblemKey& key,
                      std::shared_ptr<codegen::NativeModule> module);

    /** Validate + load a persisted entry; deletes it when invalid. */
    std::shared_ptr<codegen::NativeModule>
    loadFromDisk(Shard& shard, const ProblemKey& key);

    std::string dir_;
    size_t capacity_;
    size_t perShardCapacity_;
    mutable std::vector<Shard> shards_;
};

} // namespace hecate::service
