#include "service/native_tier.hpp"

#include <cstdio>

#include "codegen/hecate_native_abi.h"
#include "obs/telemetry.hpp"
#include "support/diagnostics.hpp"

namespace hecate::service {

const char*
tierName(ExecTier tier)
{
    switch (tier) {
      case ExecTier::Bytecode:
        return "bytecode";
      case ExecTier::Native:
        return "native";
      case ExecTier::Auto:
        return "auto";
    }
    return "?";
}

std::optional<ExecTier>
parseTierName(std::string_view name)
{
    if (name == "bytecode")
        return ExecTier::Bytecode;
    if (name == "native")
        return ExecTier::Native;
    if (name == "auto")
        return ExecTier::Auto;
    return std::nullopt;
}

NativeTier::NativeTier(NativeTierConfig config)
    : config_(std::move(config)),
      cache_(config_.cacheDir, config_.cacheCapacity)
{
}

NativeTier::~NativeTier()
{
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        threads.swap(threads_);
    }
    for (std::thread& thread : threads)
        thread.join();
}

bool
NativeTier::ensureCompilerLocked()
{
    if (!discovered_) {
        discovered_ = true;
        if (!config_.compilerOverride.empty())
            compiler_ = codegen::probeCompiler(config_.compilerOverride,
                                               &compilerError_);
        else
            compiler_ = codegen::discoverCompiler(&compilerError_);
        if (!compiler_.valid()) {
            if (compilerError_.empty())
                compilerError_ = "no usable compiler";
            std::fprintf(stderr,
                         "hecate: native tier disabled, staying on "
                         "bytecode: %s\n",
                         compilerError_.c_str());
        }
    }
    return compiler_.valid();
}

bool
NativeTier::compilerAvailable()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ensureCompilerLocked();
}

std::string
NativeTier::compilerIdentity()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ensureCompilerLocked();
    return compiler_.identity;
}

std::string
NativeTier::compilerError()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ensureCompilerLocked();
    return compilerError_;
}

void
NativeTier::pinLocked(const std::string& canonical,
                      const std::string& failure)
{
    auto [it, inserted] = pinned_.emplace(canonical, failure);
    if (inserted) {
        ++stats_.pinnedKeys;
        // Log once per key; later requests fail fast and silently.
        std::fprintf(stderr,
                     "hecate: native compile failed, key pinned to "
                     "bytecode: %s\n",
                     failure.c_str());
    }
}

void
NativeTier::noteServedLocked(const std::string& canonical)
{
    if (served_.insert(canonical).second)
        ++stats_.swaps;
}

std::shared_ptr<codegen::NativeModule>
NativeTier::buildModule(const ProblemKey& key, const std::string& tu,
                        std::string* failure)
{
    codegen::CompilerInfo compiler;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        compiler = compiler_;
    }
    codegen::CompileResult result = codegen::compileNativeTU(compiler, tu);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.compileSeconds += result.seconds;
        if (result.ok)
            ++stats_.compiles;
        else
            ++stats_.compileFailures;
    }
    if (!result.ok) {
        *failure = result.error;
        codegen::removeTempDir(result.tempDir);
        return nullptr;
    }

    std::string adoptError;
    std::shared_ptr<codegen::NativeModule> module =
        cache_.adopt(key, result.soPath, &adoptError);
    codegen::removeTempDir(result.tempDir);
    if (!module)
        *failure = "load failed: " + adoptError;
    return module;
}

std::shared_ptr<codegen::NativeModule>
NativeTier::acquire(const ProblemKey& problem,
                    const std::string& schedulePayload,
                    const sched::Skeleton& concrete,
                    const runtime::Program& program,
                    runtime::SweepStrategy strategy,
                    obs::Telemetry& telemetry, std::string* error)
{
    codegen::NativeForm form;
    try {
        form = codegen::resolveNativeForm(program, strategy);
    } catch (const Error& e) {
        if (error)
            *error = e.what();
        return nullptr;
    }

    ProblemKey key;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!ensureCompilerLocked()) {
            if (error)
                *error = compilerError_;
            return nullptr;
        }
        key = makeNativeKey(problem, schedulePayload,
                            codegen::nativeFormName(form),
                            compiler_.identity,
                            codegen::kNativeEmitterVersion,
                            HECATE_NATIVE_ABI_VERSION);
        // Join any background build of the same key rather than racing
        // a second compiler invocation (single-flight).
        cv_.wait(lock, [&] { return !inFlight_.count(key.canonical); });
        auto pin = pinned_.find(key.canonical);
        if (pin != pinned_.end()) {
            if (error)
                *error = pin->second;
            return nullptr;
        }
    }

    if (std::shared_ptr<codegen::NativeModule> module = cache_.get(key)) {
        std::lock_guard<std::mutex> lock(mutex_);
        noteServedLocked(key.canonical);
        return module;
    }

    std::string failure;
    std::shared_ptr<codegen::NativeModule> module;
    std::string tu;
    bool emitted = false;
    try {
        tu = codegen::emitNativeTU(concrete, form, key.digest());
        emitted = true;
    } catch (const Error& e) {
        failure = std::string("emit failed: ") + e.what();
    }
    if (emitted) {
        std::lock_guard<std::mutex> lock(mutex_);
        inFlight_.insert(key.canonical);
    }
    if (emitted) {
        obs::Span span = telemetry.span("native.compile", "stage");
        module = buildModule(key, tu, &failure);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (emitted)
            inFlight_.erase(key.canonical);
        if (module)
            noteServedLocked(key.canonical);
        else
            pinLocked(key.canonical, failure);
    }
    cv_.notify_all();
    if (!module && error)
        *error = failure;
    return module;
}

std::shared_ptr<codegen::NativeModule>
NativeTier::poll(const ProblemKey& problem,
                 const std::string& schedulePayload,
                 const sched::Skeleton& concrete,
                 const runtime::Program& program,
                 runtime::SweepStrategy strategy)
{
    codegen::NativeForm form;
    try {
        form = codegen::resolveNativeForm(program, strategy);
    } catch (const Error&) {
        return nullptr; // shape rejected: this request stays bytecode
    }

    ProblemKey key;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!ensureCompilerLocked())
            return nullptr;
        key = makeNativeKey(problem, schedulePayload,
                            codegen::nativeFormName(form),
                            compiler_.identity,
                            codegen::kNativeEmitterVersion,
                            HECATE_NATIVE_ABI_VERSION);
        if (pinned_.count(key.canonical) || inFlight_.count(key.canonical))
            return nullptr;
    }

    if (std::shared_ptr<codegen::NativeModule> module = cache_.get(key)) {
        std::lock_guard<std::mutex> lock(mutex_);
        noteServedLocked(key.canonical);
        return module;
    }

    // First miss: emit the TU here (string building, cheap, and it
    // keeps the skeleton's lifetime out of the thread), then kick the
    // out-of-process build in the background. This request (and every
    // one until the build lands) keeps running on bytecode.
    std::string tu;
    try {
        tu = codegen::emitNativeTU(concrete, form, key.digest());
    } catch (const Error& e) {
        std::lock_guard<std::mutex> lock(mutex_);
        pinLocked(key.canonical, std::string("emit failed: ") + e.what());
        return nullptr;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (pinned_.count(key.canonical) || inFlight_.count(key.canonical))
        return nullptr; // raced another poll
    inFlight_.insert(key.canonical);
    threads_.emplace_back([this, key, tu = std::move(tu)]() {
        std::string failure;
        std::shared_ptr<codegen::NativeModule> module =
            buildModule(key, tu, &failure);
        {
            std::lock_guard<std::mutex> relock(mutex_);
            inFlight_.erase(key.canonical);
            if (!module)
                pinLocked(key.canonical, failure);
        }
        cv_.notify_all();
    });
    return nullptr;
}

void
NativeTier::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return inFlight_.empty(); });
}

NativeTierStats
NativeTier::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
NativeTier::exportCounters(obs::Telemetry& telemetry) const
{
    NativeTierStats tier = stats();
    NativeCache::Stats cache = cache_.stats();
    telemetry.set("native.compile.count",
                  static_cast<double>(tier.compiles + tier.compileFailures));
    telemetry.set("native.compile.fail",
                  static_cast<double>(tier.compileFailures));
    telemetry.set("native.compile.seconds", tier.compileSeconds);
    telemetry.set("native.swap", static_cast<double>(tier.swaps));
    telemetry.set("native.pinned", static_cast<double>(tier.pinnedKeys));
    telemetry.set("native.cache.hits", static_cast<double>(cache.hits));
    telemetry.set("native.cache.misses",
                  static_cast<double>(cache.misses));
    telemetry.set("native.cache.disk_hits",
                  static_cast<double>(cache.diskHits));
    telemetry.set("native.cache.corrupt_evicted",
                  static_cast<double>(cache.corruptEvicted));
}

} // namespace hecate::service
